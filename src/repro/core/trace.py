"""Execution tracing: watch partial matches flow through the whirlpool.

Adaptivity is the paper's whole point, and it is invisible in aggregate
counters: two runs with identical operation counts can route the same
tuple through opposite plans.  :class:`ExecutionTrace` is an engine
observer that records every seed / routing decision / extension outcome,
and can reconstruct per-match histories — "this tuple went price → title,
got pruned at threshold 0.62" — plus routing summaries showing how the
chosen next-server distribution shifts as the top-k threshold grows.

Usage::

    trace = ExecutionTrace()
    runner = WhirlpoolS(..., observer=trace)
    result = runner.run()
    print(trace.summary())
    print(trace.history(result.answers[0].match.match_id))

All engines accept the observer; events carry a monotone sequence number
(and the thread name under Whirlpool-M, where interleaving is real).
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Optional

from repro.core.match import PartialMatch


class TraceEvent:
    """One observed engine event."""

    __slots__ = ("seq", "kind", "match_id", "server_id", "score", "bound", "threshold", "detail")

    def __init__(
        self,
        seq: int,
        kind: str,
        match_id: int,
        server_id: Optional[int],
        score: float,
        bound: float,
        threshold: float,
        detail: str = "",
    ) -> None:
        self.seq = seq
        self.kind = kind
        self.match_id = match_id
        self.server_id = server_id
        self.score = score
        self.bound = bound
        self.threshold = threshold
        self.detail = detail

    def __repr__(self) -> str:
        server = f" server={self.server_id}" if self.server_id is not None else ""
        return (
            f"TraceEvent({self.seq}: {self.kind} match={self.match_id}{server} "
            f"score={self.score:.3f} bound={self.bound:.3f} thr={self.threshold:.3f})"
        )


class EngineObserver:
    """No-op observer base; engines call these hooks when one is attached."""

    def on_seed(self, match: PartialMatch, threshold: float) -> None:
        """A root candidate entered the system."""

    def on_route(self, match: PartialMatch, server_id: int, threshold: float) -> None:
        """The router sent ``match`` to ``server_id``."""

    def on_extension(
        self,
        parent: PartialMatch,
        extension: PartialMatch,
        outcome: str,
        threshold: float,
    ) -> None:
        """A server spawned ``extension``; outcome ∈ completed/pruned/alive."""

    def on_prune(self, match: PartialMatch, threshold: float) -> None:
        """``match`` was discarded against the top-k threshold."""

    def on_queue_depth(self, site: str, depth: int) -> None:
        """A queue at ``site`` reached ``depth`` entries after a put."""


class FanoutObserver(EngineObserver):
    """Forward every hook to several observers, in order.

    The query service attaches one :class:`ExecutionTrace` (for the
    slow-query log's routing history) *and* one metrics observer per
    request; engines still see a single ``observer`` argument.  A hook
    that raises aborts the fan-out — observers are trusted in-process
    code, same as single observers.
    """

    def __init__(self, *observers: EngineObserver) -> None:
        self.observers = tuple(observers)

    def on_seed(self, match: PartialMatch, threshold: float) -> None:
        for observer in self.observers:
            observer.on_seed(match, threshold)

    def on_route(self, match: PartialMatch, server_id: int, threshold: float) -> None:
        for observer in self.observers:
            observer.on_route(match, server_id, threshold)

    def on_extension(
        self,
        parent: PartialMatch,
        extension: PartialMatch,
        outcome: str,
        threshold: float,
    ) -> None:
        for observer in self.observers:
            observer.on_extension(parent, extension, outcome, threshold)

    def on_prune(self, match: PartialMatch, threshold: float) -> None:
        for observer in self.observers:
            observer.on_prune(match, threshold)

    def on_queue_depth(self, site: str, depth: int) -> None:
        for observer in self.observers:
            observer.on_queue_depth(site, depth)


class ExecutionTrace(EngineObserver):
    """Observer that records everything (thread-safe)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._parents: Dict[int, int] = {}
        self._seq = itertools.count()
        self._lock = threading.Lock()

    # -- hook implementations ------------------------------------------------

    def _record(
        self,
        kind: str,
        match: PartialMatch,
        server_id: Optional[int],
        threshold: float,
        detail: str = "",
    ) -> None:
        event = TraceEvent(
            next(self._seq),
            kind,
            match.match_id,
            server_id,
            match.score,
            match.upper_bound,
            threshold,
            detail,
        )
        with self._lock:
            self.events.append(event)

    def on_seed(self, match: PartialMatch, threshold: float) -> None:
        self._record("seed", match, None, threshold)

    def on_route(self, match: PartialMatch, server_id: int, threshold: float) -> None:
        self._record("route", match, server_id, threshold)

    def on_extension(
        self,
        parent: PartialMatch,
        extension: PartialMatch,
        outcome: str,
        threshold: float,
    ) -> None:
        with self._lock:
            self._parents[extension.match_id] = parent.match_id
        self._record("extension", extension, None, threshold, detail=outcome)

    def on_prune(self, match: PartialMatch, threshold: float) -> None:
        self._record("prune", match, None, threshold)

    # -- analysis ----------------------------------------------------------------

    def lineage(self, match_id: int) -> List[int]:
        """Match ids from the seed down to ``match_id``."""
        chain = [match_id]
        while chain[-1] in self._parents:
            chain.append(self._parents[chain[-1]])
        chain.reverse()
        return chain

    def history(self, match_id: int) -> str:
        """Readable event history for one tuple and its ancestors."""
        wanted = set(self.lineage(match_id))
        lines = []
        for event in self.events:
            if event.match_id in wanted:
                server = f" @server {event.server_id}" if event.server_id is not None else ""
                detail = f" [{event.detail}]" if event.detail else ""
                lines.append(
                    f"  #{event.seq:<5} {event.kind:<9} match {event.match_id}"
                    f"{server} score={event.score:.3f} bound={event.bound:.3f}"
                    f" thr={event.threshold:.3f}{detail}"
                )
        return "\n".join(lines) if lines else f"  (no events for match {match_id})"

    def routing_distribution(self) -> Dict[int, int]:
        """server id → number of matches routed there."""
        distribution: Dict[int, int] = {}
        for event in self.events:
            if event.kind == "route" and event.server_id is not None:
                distribution[event.server_id] = distribution.get(event.server_id, 0) + 1
        return distribution

    def routes_by_threshold_band(
        self, bands: int = 4, ceiling: Optional[float] = None
    ) -> Dict[int, Dict[int, int]]:
        """Routing distribution per threshold band — adaptivity made visible.

        Returns {band index: {server id: count}}; band 0 covers the lowest
        thresholds.  A static plan yields identical distributions across
        bands; an adaptive router's distribution drifts.
        """
        routes = [event for event in self.events if event.kind == "route"]
        if not routes:
            return {}
        top = ceiling if ceiling is not None else max(e.threshold for e in routes)
        top = max(top, 1e-12)
        out: Dict[int, Dict[int, int]] = {}
        for event in routes:
            if event.server_id is None:
                continue
            band = min(int(event.threshold / top * bands), bands - 1)
            out.setdefault(band, {})
            out[band][event.server_id] = out[band].get(event.server_id, 0) + 1
        return out

    def counts(self) -> Dict[str, int]:
        """Event counts by kind."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def summary(self) -> str:
        """Multi-line trace overview."""
        counts = self.counts()
        lines = [
            f"trace: {len(self.events)} events "
            f"({', '.join(f'{k}={v}' for k, v in sorted(counts.items()))})"
        ]
        lines.append("routing distribution:")
        for server_id, count in sorted(self.routing_distribution().items()):
            lines.append(f"  server {server_id}: {count} matches")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
