"""Partial matches — the tuples that flow through Whirlpool.

A partial match instantiates the query root (always) plus a subset of the
other query nodes, each either with a data node or with the *deleted*
marker (leaf-deletion semantics).  It carries:

- its **current score** — the sum of the contributions granted so far;
- its **visited set** — which servers have processed it (the paper's bit
  vector; here a frozenset of node ids);
- its **upper bound** — current score plus the maximum contribution of
  every unvisited server: the *maximum possible final score* that drives
  both pruning and the adaptive priority queues.

Matches are immutable once created; servers spawn new extended matches.
Scores are monotone along any extension chain, which is what makes pruning
against the current top-k threshold safe.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.scoring.model import MatchQuality
from repro.xmldb.model import XMLNode

_match_counter = itertools.count()

DELETED = None
"""Instantiation marker for a deleted (optional, unmatched) query node."""


class PartialMatch:
    """One tuple: root image + per-node instantiations, score, bound."""

    __slots__ = (
        "match_id",
        "root_node",
        "instantiations",
        "qualities",
        "visited",
        "score",
        "upper_bound",
        "arrival",
    )

    def __init__(
        self,
        root_node: XMLNode,
        instantiations: Dict[int, Optional[XMLNode]],
        qualities: Dict[int, MatchQuality],
        visited: FrozenSet[int],
        score: float,
    ) -> None:
        self.match_id = next(_match_counter)
        self.root_node = root_node
        self.instantiations = instantiations
        self.qualities = qualities
        self.visited = visited
        self.score = score
        self.upper_bound = score  # refreshed via refresh_bound()
        self.arrival = self.match_id  # FIFO tiebreaker / arrival order

    # -- construction --------------------------------------------------------

    @staticmethod
    def initial(root_node: XMLNode, root_score: float = 0.0) -> "PartialMatch":
        """The match the root server emits: only the root is instantiated."""
        return PartialMatch(
            root_node=root_node,
            instantiations={},
            qualities={},
            visited=frozenset(),
            score=root_score,
        )

    def extend(
        self,
        node_id: int,
        candidate: Optional[XMLNode],
        quality: MatchQuality,
        contribution: float,
    ) -> "PartialMatch":
        """Spawn the extension where ``node_id`` is instantiated by
        ``candidate`` (or deleted when ``candidate is None``)."""
        instantiations = dict(self.instantiations)
        instantiations[node_id] = candidate
        qualities = dict(self.qualities)
        qualities[node_id] = quality
        return PartialMatch(
            root_node=self.root_node,
            instantiations=instantiations,
            qualities=qualities,
            visited=self.visited | {node_id},
            score=self.score + contribution,
        )

    # -- bound management ------------------------------------------------------

    def refresh_bound(self, max_contributions: Dict[int, float]) -> float:
        """Recompute the maximum possible final score.

        ``max_contributions`` maps every server node id to the largest
        contribution that server can grant.  The bound is admissible because
        contributions are non-negative and bounded by their per-server max.
        """
        remaining = 0.0
        for node_id, max_contribution in max_contributions.items():
            if node_id not in self.visited:
                remaining += max_contribution
        self.upper_bound = self.score + remaining
        return self.upper_bound

    def max_next_score(
        self, node_id: int, max_contributions: Dict[int, float]
    ) -> float:
        """Section 6.1.3's 'maximum possible next score' at one server."""
        return self.score + max_contributions.get(node_id, 0.0)

    # -- inspection --------------------------------------------------------------

    def unvisited(self, server_ids: Iterable[int]) -> List[int]:
        """Server node ids this match has not gone through yet."""
        return [node_id for node_id in server_ids if node_id not in self.visited]

    def is_complete(self, server_ids: Iterable[int]) -> bool:
        """True iff every server has processed this match."""
        return all(node_id in self.visited for node_id in server_ids)

    def instantiated_nodes(self) -> Dict[int, XMLNode]:
        """Node id → data node for the non-deleted instantiations."""
        return {
            node_id: node
            for node_id, node in self.instantiations.items()
            if node is not None
        }

    def deleted_nodes(self) -> List[int]:
        """Node ids left uninstantiated via leaf deletion."""
        return [
            node_id for node_id, node in self.instantiations.items() if node is None
        ]

    def exact_everywhere(self) -> bool:
        """True iff every instantiated node matched its exact predicate."""
        return all(
            quality is MatchQuality.EXACT for quality in self.qualities.values()
        )

    def explain(self, pattern) -> str:
        """Human-readable relaxation provenance against ``pattern``.

        One line per query node: matched exactly, matched through
        relaxation (edge generalization / subtree promotion — the node
        satisfies only the relaxed root-anchored predicate), or deleted
        (leaf deletion).  Nodes no server has visited yet are reported as
        pending.
        """
        lines = [f"answer root: {self.root_node!r} (score {self.score:.4f})"]
        for node in pattern.non_root_nodes():
            instantiated = self.instantiations.get(node.node_id)
            quality = self.qualities.get(node.node_id)
            if node.node_id not in self.visited:
                lines.append(f"  {node.label()}: pending (not yet processed)")
            elif instantiated is None:
                lines.append(
                    f"  {node.label()}: DELETED (leaf deletion — no "
                    f"qualifying {node.tag} under this root)"
                )
            elif quality is MatchQuality.EXACT:
                lines.append(
                    f"  {node.label()}: exact match at {instantiated!r}"
                )
            else:
                lines.append(
                    f"  {node.label()}: RELAXED match at {instantiated!r} "
                    f"(edge generalization / subtree promotion — found at "
                    f"depth {len(instantiated.dewey) - len(self.root_node.dewey)}, "
                    f"outside the exact axis)"
                )
        return "\n".join(lines)

    def describe(self) -> str:
        """Readable one-liner for logs and examples."""
        parts = [f"root={self.root_node!r}", f"score={self.score:.4f}"]
        for node_id in sorted(self.instantiations):
            node = self.instantiations[node_id]
            quality = self.qualities[node_id].value
            if node is None:
                parts.append(f"#{node_id}:deleted")
            else:
                parts.append(f"#{node_id}:{node.tag}({quality})")
        return " ".join(parts)

    def __repr__(self) -> str:
        return (
            f"PartialMatch(id={self.match_id}, root={self.root_node.dewey}, "
            f"score={self.score:.4f}, bound={self.upper_bound:.4f}, "
            f"visited={sorted(self.visited)})"
        )
