"""Whirlpool servers — Section 5.2.1 and Algorithm 1 at runtime.

One server exists per non-root query node.  Given a partial match, the
server:

1. **probes the index** for candidate nodes with its tag that satisfy the
   (relaxed) structural predicate against the match's root image — the
   composition of the axes from the server node to the query root
   (Algorithm 1's first step);
2. **evaluates the conditional predicate sequence** against every query
   node already instantiated in the match — exact axis first, then its
   relaxation ("if not child, then descendant");
3. **spawns extensions**: one per surviving candidate, scored through the
   score model (exact matches earn the exact component predicate's
   contribution, relaxed matches the relaxed predicate's); when no
   candidate survives and relaxation is on, the single *deleted* extension
   (outer-join semantics of leaf deletion) is emitted instead.

Match-quality semantics: in relaxed mode, validity *and* quality are
root-anchored — a candidate is EXACT iff the exact root-to-node composed
axis holds, RELAXED iff only its relaxation does.  Subtree promotion
legitimately breaks pairwise axes, so conditional predicates do not gate
relaxed candidates; root-anchored quality also keeps tuple scores
independent of the order servers run in (Definition 4.4's component
predicates are root-anchored for the same reason).  In exact mode both the
exact root axis and the full conditional predicate sequence are mandatory
filters.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.match import PartialMatch
from repro.core.stats import ExecutionStats
from repro.query.predicates import compiled_axis_test
from repro.relax.plan import ServerPredicates
from repro.scoring.model import MatchQuality, ScoreModel
from repro.xmldb.dewey import Dewey
from repro.xmldb.index import DatabaseIndex
from repro.xmldb.model import XMLNode

if TYPE_CHECKING:
    from repro.faults.inject import FaultInjector

#: Probe-memo capacity per server.  The memo amortizes one index probe
#: across the router's sizing call and the server operation(s) for the
#: same root image; clearing wholesale at the cap keeps eviction
#: deterministic (entries are pure functions of the root image, so a
#: recompute after a clear returns identical values).
PROBE_MEMO_CAP = 512


class CandidateCounts:
    """Exact per-root candidate counts (total and exact-quality)."""

    __slots__ = ("total", "exact")

    def __init__(self, total: int, exact: int) -> None:
        self.total = total
        self.exact = exact

    def __repr__(self) -> str:
        return f"CandidateCounts(total={self.total}, exact={self.exact})"


class RoutingEstimates:
    """Per-server fan-out statistics consumed by the size-based router."""

    __slots__ = ("fanout_total", "fanout_exact", "p_empty")

    def __init__(self, fanout_total: float, fanout_exact: float, p_empty: float) -> None:
        self.fanout_total = fanout_total
        self.fanout_exact = fanout_exact
        self.p_empty = p_empty

    def __repr__(self) -> str:
        return (
            f"RoutingEstimates(total={self.fanout_total:.2f}, "
            f"exact={self.fanout_exact:.2f}, p_empty={self.p_empty:.2f})"
        )


class Server:
    """Evaluation server for one query node.

    ``join_algorithm`` selects how candidates are located per operation:

    - ``"index"`` (default) — binary-search the tag index down to the root
      image's subtree interval, then filter by depth range;
    - ``"scan"`` — the paper's baseline ("a simple nested-loop algorithm
      based on Dewey"): linearly scan every node of the server's tag and
      test the structural predicate per node.

    Both return identical candidates; they differ only in comparisons
    performed, which ``bench_join_algorithms.py`` measures — the comparison
    the paper explicitly skips ("since we are not comparing join algorithm
    performance").
    """

    JOIN_ALGORITHMS = ("index", "scan")

    def __init__(
        self,
        spec: ServerPredicates,
        index: DatabaseIndex,
        score_model: ScoreModel,
        relaxed: bool = True,
        join_algorithm: str = "index",
        *,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        if join_algorithm not in self.JOIN_ALGORITHMS:
            raise ValueError(
                f"unknown join_algorithm {join_algorithm!r}; "
                f"expected one of {self.JOIN_ALGORITHMS}"
            )
        self.spec = spec
        self.index = index
        self.score_model = score_model
        self.relaxed = relaxed
        self.join_algorithm = join_algorithm
        self._injector = injector
        self._root_tag: Optional[str] = None
        # One lock covers every piece of per-server cached state: servers
        # are shared whenever the service layer hands one cached engine to
        # several worker threads, and Whirlpool-M probes from every server
        # thread.  Dict reads/writes below must happen under it.
        self._cache_lock = threading.Lock()
        self._estimates_cache: Optional[RoutingEstimates] = None
        self._count_cache: Dict[Dewey, CandidateCounts] = {}
        # root image -> (survivors, probe_comparisons): the post-value-
        # filter candidates with their precomputed exact-quality flags,
        # plus the comparison count the probe charged (pre-filter).  Both
        # the router's candidate_counts() and process() draw from it, so
        # a popped match's sibling extensions pay for one probe total.
        self._probe_memo: Dict[Dewey, Tuple[Tuple[Tuple[XMLNode, bool], ...], int]] = {}
        self._exact_test = compiled_axis_test(spec.tag, spec.exact_root_axis)

    def _probe(self, root_dewey: Dewey) -> Tuple[List[XMLNode], int]:
        """Locate candidates; returns (candidates, comparisons_paid)."""
        if self.join_algorithm == "index":
            candidates = self.index.related(
                self.spec.tag, root_dewey, self.spec.probe_axis
            )
            return candidates, len(candidates)
        # Nested-loop scan: every node with the tag is compared against
        # the root image (the paper's per-server join baseline).
        all_nodes = self.index[self.spec.tag].all()
        candidates = [
            node
            for node in all_nodes
            if self.spec.probe_axis.matches(root_dewey, node.dewey)
        ]
        return candidates, len(all_nodes)

    def _probe_shared(
        self, root_dewey: Dewey
    ) -> Tuple[Tuple[Tuple[XMLNode, bool], ...], int]:
        """Memoized probe for one root image.

        Returns ``(survivors, comparisons)``: the value-filtered candidates
        paired with their exact-root-axis verdicts, and the comparison
        count the underlying probe paid (the *pre*-filter candidate count —
        what :meth:`process` reports to ``ExecutionStats``, so memo hits
        and misses produce identical stats).  Entries are pure functions of
        the root image; on a miss the probe runs outside the lock (a
        concurrent duplicate probe is benign and both writers store equal
        values).
        """
        with self._cache_lock:
            entry = self._probe_memo.get(root_dewey)
        if entry is not None:
            return entry
        spec = self.spec
        candidates, comparisons = self._probe(root_dewey)
        exact_test = self._exact_test
        survivors = tuple(
            (candidate, exact_test(root_dewey, candidate.dewey))
            for candidate in candidates
            if spec.value_matches(candidate.value)
        )
        entry = (survivors, comparisons)
        with self._cache_lock:
            if len(self._probe_memo) >= PROBE_MEMO_CAP:
                self._probe_memo.clear()
            self._probe_memo[root_dewey] = entry
        return entry

    @property
    def node_id(self) -> int:
        """Preorder id of the query node this server instantiates."""
        return self.spec.node_id

    @property
    def tag(self) -> str:
        """Tag of the query node this server instantiates."""
        return self.spec.tag

    # -- the server operation -----------------------------------------------------

    def process(
        self, match: PartialMatch, stats: Optional[ExecutionStats] = None
    ) -> List[PartialMatch]:
        """Run one server operation: extend ``match`` at this query node.

        Returns the spawned extensions (unpruned — pruning is the caller's
        job, since it needs the shared top-k set).  Never returns an empty
        list in relaxed mode (the deleted extension survives); may in exact
        mode, which kills the match.
        """
        injector = self._injector
        if injector is not None and not injector.on_server_op(self.spec.node_id, match):
            # Injected DROP: the operation silently loses the match.  The
            # injector recorded its upper bound, so the result certificate
            # still covers whatever this match could have become.  An
            # injected ERROR raises before any index work, keeping retries
            # idempotent.
            return []

        spec = self.spec
        root_dewey = match.root_node.dewey
        survivors, comparisons = self._probe_shared(root_dewey)

        extensions: List[PartialMatch] = []
        for candidate, exact in survivors:
            if not self.relaxed:
                # Exact mode: the conditional predicate sequence is a
                # mandatory filter — every instantiated related node must
                # stand in the exact composed axis to the candidate.
                if not exact:
                    continue
                alive = True
                for conditional in spec.conditionals:
                    other = match.instantiations.get(conditional.other_id)
                    if other is None:  # not instantiated yet
                        continue
                    comparisons += 1
                    if not conditional.holds_exactly(candidate.dewey, other.dewey):
                        alive = False
                        break
                if not alive:
                    continue
            # Relaxed mode: validity and quality are root-anchored only
            # (Definition 4.4's component predicates relate the root to
            # each node; subtree promotion legitimately breaks pairwise
            # axes).  Keeping quality independent of the conditional
            # checks makes tuple scores independent of server order — the
            # invariant the cross-engine tests rely on.

            quality = MatchQuality.EXACT if exact else MatchQuality.RELAXED
            contribution = self.score_model.contribution(
                spec.node_id, quality, candidate
            )
            extensions.append(
                match.extend(spec.node_id, candidate, quality, contribution)
            )

        if not extensions and self.relaxed:
            extensions.append(
                match.extend(spec.node_id, None, MatchQuality.DELETED, 0.0)
            )
            if stats is not None:
                stats.record_deleted_extension()

        if stats is not None:
            stats.record_server_operation(spec.node_id, comparisons)
            stats.record_created(len(extensions))
        return extensions

    # -- estimates for the router -----------------------------------------------------

    def set_root_tag(self, root_tag: str) -> None:
        """Tell the server its query root tag (needed for fan-out estimates)."""
        with self._cache_lock:
            self._root_tag = root_tag
            self._estimates_cache = None

    def routing_estimates(self) -> "RoutingEstimates":
        """Fan-out statistics driving the size-based router.

        Computed lazily, once, by scanning the root-tag index: mean number
        of probe candidates per root image (total and exact-quality), and
        the fraction of root images with an empty probe (those spawn the
        single outer-join deleted extension).  The analog of the paper's
        "estimates... obtained by using work on selectivity estimation for
        XML".  The scan draws on the shared probe memo, pre-warming it for
        the root images the engines are about to pop.  Computed outside
        the cache lock (it probes the index); a concurrent duplicate
        computation stores an identical value.
        """
        with self._cache_lock:
            cached = self._estimates_cache
        if cached is not None:
            return cached
        root_tag = self._root_tag
        if root_tag is None:
            raise RuntimeError("set_root_tag() must be called before routing_estimates()")

        anchors = self.index[root_tag].all()
        if not anchors:
            estimates = RoutingEstimates(0.0, 0.0, 1.0)
        else:
            total = 0
            exact_total = 0
            empty = 0
            for anchor in anchors:
                survivors, _ = self._probe_shared(anchor.dewey)
                total += len(survivors)
                exact_total += sum(1 for _, exact in survivors if exact)
                if not survivors:
                    empty += 1
            estimates = RoutingEstimates(
                fanout_total=total / len(anchors),
                fanout_exact=exact_total / len(anchors),
                p_empty=empty / len(anchors),
            )
        with self._cache_lock:
            if self._estimates_cache is None:
                self._estimates_cache = estimates
            return self._estimates_cache

    def estimated_fanout(self) -> float:
        """Mean candidate count per root image (shortcut for tests)."""
        return self.routing_estimates().fanout_total

    def candidate_counts(self, root_dewey: Dewey) -> "CandidateCounts":
        """(total, exact-quality) candidate counts for one root image.

        This is the size-based router's per-match signal: how many
        extensions this server would spawn for a match anchored at
        ``root_dewey``.  Cached per root image, and computed from the
        shared probe memo — so the sizing probe and the eventual server
        operation pay for one index probe between them (the "cost of
        adaptivity" the paper's Figure 8 charges is the memo fill).
        """
        with self._cache_lock:
            counts = self._count_cache.get(root_dewey)
        if counts is not None:
            return counts
        survivors, _ = self._probe_shared(root_dewey)
        exact = sum(1 for _, is_exact in survivors if is_exact)
        counts = CandidateCounts(total=len(survivors), exact=exact)
        with self._cache_lock:
            return self._count_cache.setdefault(root_dewey, counts)

    def __repr__(self) -> str:
        mode = "relaxed" if self.relaxed else "exact"
        return f"Server({self.tag}#{self.node_id}, {mode})"
