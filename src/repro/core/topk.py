"""The shared top-k set (Section 5.1) with safe score-based pruning.

The set keeps, per distinct query-root data node, the best score any tuple
for that root has reached so far ("only one match with a given root node is
present in the top-k set") plus the representative match that achieved it.
The pruning threshold — the paper's ``currentTopK`` — is the k-th largest
per-root score currently in the set (0 while fewer than k roots are known).

Safety argument (why pruning on ``upper_bound < threshold`` never loses a
top-k answer): scores are monotone along extension chains, so a tuple whose
maximum possible final score is below the current threshold can only finish
below it; and every entry score is achieved by some tuple whose own bound
is at least that score, hence is itself never pruned while it remains among
the top k — the threshold never overstates what completed tuples will
reach.  In *exact* mode, tuples can die without completing (a mandatory
predicate fails), so entry scores of unfinished tuples are not guaranteed
achievable; the set therefore supports ``threshold_source="complete"``,
where only completed matches raise the threshold.

Thread-safety: all mutating operations take an internal lock so
Whirlpool-M's server threads can share one instance.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.match import PartialMatch

if TYPE_CHECKING:
    from repro.query.pattern import TreePattern
from repro.xmldb.dewey import Dewey
from repro.xmldb.model import XMLNode


class TopKAnswer:
    """One final answer: a root node, its score, its representative match."""

    __slots__ = ("root_node", "score", "match")

    def __init__(self, root_node: XMLNode, score: float, match: PartialMatch) -> None:
        self.root_node = root_node
        self.score = score
        self.match = match

    def explain(self, pattern: "TreePattern") -> str:
        """Relaxation provenance of this answer's representative match."""
        return self.match.explain(pattern)

    def __repr__(self) -> str:
        return f"TopKAnswer({self.root_node!r}, score={self.score:.4f})"


class _Entry:
    __slots__ = ("root_node", "score", "match", "complete_score", "complete_match")

    def __init__(self, root_node: XMLNode) -> None:
        self.root_node = root_node
        self.score = float("-inf")
        self.match: Optional[PartialMatch] = None
        self.complete_score = float("-inf")
        self.complete_match: Optional[PartialMatch] = None


class TopKSet:
    """Candidate top-k answers plus the pruning threshold they induce."""

    def __init__(self, k: int, threshold_source: str = "all") -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if threshold_source not in ("all", "complete"):
            raise ValueError(
                f"threshold_source must be 'all' or 'complete', got {threshold_source!r}"
            )
        self.k = k
        self.threshold_source = threshold_source
        self._entries: Dict[Dewey, _Entry] = {}
        self._lock = threading.Lock()

    # -- updates ---------------------------------------------------------------

    def observe(self, match: PartialMatch, complete: bool) -> None:
        """Record a tuple's current score against its root's entry.

        Rule (i)/(ii) of Section 5.1: the new tuple updates or replaces the
        entry for its root when it improves on it; otherwise the entry is
        untouched (the tuple itself may still survive — survival is decided
        by :meth:`is_pruned`, not here).
        """
        key = match.root_node.dewey
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _Entry(match.root_node)
                self._entries[key] = entry
            if complete and match.score > entry.complete_score:
                entry.complete_score = match.score
                entry.complete_match = match
            better = match.score > entry.score
            # On ties prefer the more-instantiated tuple: it is the more
            # informative representative for the user.
            tie_more_complete = (
                entry.match is not None
                and match.score == entry.score
                and len(match.visited) > len(entry.match.visited)
            )
            if better or tie_more_complete or entry.match is None:
                entry.score = match.score
                entry.match = match

    # -- threshold / pruning -------------------------------------------------------

    def threshold(self) -> float:
        """The paper's ``currentTopK``: the k-th best entry score (or 0)."""
        with self._lock:
            return self._threshold_locked()

    def _threshold_locked(self) -> float:
        if self.threshold_source == "complete":
            scores = [
                entry.complete_score
                for entry in self._entries.values()
                if entry.complete_match is not None
            ]
        else:
            scores = [entry.score for entry in self._entries.values()]
        if len(scores) < self.k:
            return 0.0
        scores.sort(reverse=True)
        return scores[self.k - 1]

    def is_pruned(self, match: PartialMatch) -> bool:
        """True iff the tuple's maximum possible final score cannot reach
        the current threshold (strict comparison keeps potential ties)."""
        return match.upper_bound < self.threshold()

    # -- results -----------------------------------------------------------------

    def answers(self) -> List[TopKAnswer]:
        """The k best entries, best first; ties break by document order.

        With ``threshold_source="complete"`` (exact mode) only roots with a
        completed match qualify — a partial exact match may yet die, so its
        score is not an answer.
        """
        if self.threshold_source == "complete":
            with self._lock:
                candidates = [
                    (entry.root_node, entry.complete_score, entry.complete_match)
                    for entry in self._entries.values()
                    if entry.complete_match is not None
                ]
        else:
            with self._lock:
                candidates = [
                    (entry.root_node, entry.score, entry.match)
                    for entry in self._entries.values()
                    if entry.match is not None
                ]
        candidates.sort(key=lambda item: (-item[1], item[0].dewey))
        return [
            TopKAnswer(root_node, score, match)
            for root_node, score, match in candidates[: self.k]
        ]

    def entry_count(self) -> int:
        """Number of distinct roots seen so far."""
        with self._lock:
            return len(self._entries)

    def export_state(
        self,
    ) -> List[Tuple[PartialMatch, Optional[PartialMatch]]]:
        """(match, complete_match) per entry — the checkpoint codec's view.

        Restoring replays :meth:`observe` on decoded copies of these
        matches, which reconstructs every entry score (and the threshold)
        exactly: an entry's score *is* its representative match's score.
        """
        with self._lock:
            return [
                (entry.match, entry.complete_match)
                for entry in self._entries.values()
                if entry.match is not None
            ]

    def snapshot(self) -> List[Tuple[Dewey, float]]:
        """(root dewey, score) pairs, best first — for tests/diagnostics."""
        with self._lock:
            pairs = [
                (key, entry.score)
                for key, entry in self._entries.items()
                if entry.match is not None
            ]
        pairs.sort(key=lambda pair: (-pair[1], pair[0]))
        return pairs

    def __repr__(self) -> str:
        return (
            f"TopKSet(k={self.k}, entries={self.entry_count()}, "
            f"threshold={self.threshold():.4f})"
        )
