"""Server priority queues — the four policies of Section 6.1.3.

- **FIFO** — arrival order; sensitive to processing order.
- **Current score** — highest current score first.
- **Maximum possible next score** — current score plus the maximum
  contribution *this* server could add.
- **Maximum possible final score** — the upper bound; the most adaptive
  policy and the paper's winner ("for all configurations tested, a queue
  based on the maximum possible final score performed better").

:class:`MatchQueue` is a thread-safe priority queue over partial matches
keyed by the chosen policy; the single-threaded engines use it without
contention, Whirlpool-M's server threads block on :meth:`MatchQueue.get`.
"""

from __future__ import annotations

import enum
import heapq
import threading
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.match import PartialMatch
from repro.errors import InjectedFaultError

if TYPE_CHECKING:
    from repro.core.trace import EngineObserver
    from repro.faults.inject import FaultInjector


class QueuePolicy(enum.Enum):
    """Server-queue prioritization policies (Section 6.1.3)."""

    FIFO = "fifo"
    CURRENT_SCORE = "current_score"
    MAX_NEXT_SCORE = "max_next_score"
    MAX_FINAL_SCORE = "max_final_score"


class MatchQueue:
    """Thread-safe priority queue of partial matches under one policy.

    Parameters
    ----------
    policy:
        Which :class:`QueuePolicy` orders the queue.
    server_id:
        Required for ``MAX_NEXT_SCORE`` — the query node whose maximum
        contribution is added to the current score.
    max_contributions:
        Per-server maximum contributions (needed by ``MAX_NEXT_SCORE``).
    injector:
        Optional :class:`~repro.faults.inject.FaultInjector`; when set,
        every put/get runs through its queue hooks (error / delay / drop
        actions).  ``None`` costs one attribute check per operation.
    site:
        Label identifying this queue to the injector and in reports
        (``"router"``, ``"server:<id>"``).
    on_drop:
        Callback invoked with a match the injector drops in transit —
        Whirlpool-M uses it to keep its in-flight counter exact.
    observer:
        Optional :class:`~repro.core.trace.EngineObserver` whose
        ``on_queue_depth`` hook receives the post-put depth — the
        metrics layer's server-queue-depth histograms.  Like
        ``injector``, ``None`` costs one attribute check per put.
    """

    def __init__(
        self,
        policy: QueuePolicy = QueuePolicy.MAX_FINAL_SCORE,
        server_id: Optional[int] = None,
        max_contributions: Optional[Dict[int, float]] = None,
        *,
        injector: Optional["FaultInjector"] = None,
        site: str = "",
        on_drop: Optional[Callable[[PartialMatch], None]] = None,
        observer: Optional["EngineObserver"] = None,
    ) -> None:
        if policy is QueuePolicy.MAX_NEXT_SCORE:
            if server_id is None or max_contributions is None:
                raise ValueError(
                    "MAX_NEXT_SCORE requires server_id and max_contributions"
                )
        self.policy = policy
        self._server_id = server_id
        self._max_contributions = max_contributions or {}
        self._heap: List = []
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._injector = injector
        self._site = site
        self._on_drop = on_drop
        self._observer = observer

    # -- ordering -------------------------------------------------------------

    def _key(self, match: PartialMatch) -> float:
        if self.policy is QueuePolicy.FIFO:
            return float(match.arrival)
        if self.policy is QueuePolicy.CURRENT_SCORE:
            return -match.score
        if self.policy is QueuePolicy.MAX_NEXT_SCORE:
            return -match.max_next_score(self._server_id, self._max_contributions)
        return -match.upper_bound

    # -- queue API -------------------------------------------------------------

    def put(self, match: PartialMatch) -> None:
        """Enqueue one match (key computed at insertion time).

        With an injector attached the put first passes through its hook:
        an ERROR rule raises before the match enters the heap, a DROP
        rule discards it (reporting through ``on_drop``), a DELAY rule
        stalls the producer.
        """
        injector = self._injector
        if injector is not None and not injector.on_put(self._site, match):
            if self._on_drop is not None:
                self._on_drop(match)
            return
        with self._lock:
            heapq.heappush(self._heap, (self._key(match), match.arrival, match))
            depth = len(self._heap)
            self._not_empty.notify()
        observer = self._observer
        if observer is not None:
            observer.on_queue_depth(self._site, depth)

    def _filter_get(self, match: PartialMatch) -> Optional[PartialMatch]:
        """Run one popped match through the injector's get hook.

        Returns the match to hand out, or ``None`` when the injector
        dropped it.  An injected ERROR counts the popped match as dropped
        (it already left the heap) and propagates.
        """
        injector = self._injector
        if injector is None:
            return match
        try:
            keep = injector.on_get(self._site, match)
        except InjectedFaultError:
            if self._on_drop is not None:
                self._on_drop(match)
            raise
        if keep:
            return match
        if self._on_drop is not None:
            self._on_drop(match)
        return None

    def get(self, timeout: Optional[float] = None) -> Optional[PartialMatch]:
        """Dequeue the head match; ``None`` on timeout or after close."""
        while True:
            with self._not_empty:
                while not self._heap:
                    if self._closed:
                        return None
                    if not self._not_empty.wait(timeout):
                        return None
                match = heapq.heappop(self._heap)[2]
            delivered = self._filter_get(match)
            if delivered is not None:
                return delivered

    def get_nowait(self) -> Optional[PartialMatch]:
        """Dequeue without blocking; ``None`` when empty."""
        while True:
            with self._lock:
                if not self._heap:
                    return None
                match = heapq.heappop(self._heap)[2]
            delivered = self._filter_get(match)
            if delivered is not None:
                return delivered

    def close(self) -> None:
        """Wake all blocked getters; subsequent gets on empty return None."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def empty(self) -> bool:
        """True iff no match is queued."""
        return len(self) == 0

    def snapshot(self) -> List[PartialMatch]:
        """All queued matches in priority order, without removing them.

        The checkpoint codec's view of the queue: non-destructive, so an
        engine can snapshot mid-run and keep going.
        """
        with self._lock:
            entries = sorted(self._heap)
        return [entry[2] for entry in entries]

    def drain(self) -> List[PartialMatch]:
        """Remove and return all queued matches in priority order."""
        with self._lock:
            out = [heapq.heappop(self._heap)[2] for _ in range(len(self._heap))]
        return out

    def __repr__(self) -> str:
        return f"MatchQueue({self.policy.value}, size={len(self)})"
