"""Interprocedural lock analysis.

Three passes:

1. **Per-function walk** (flow-sensitive): every function body is walked
   once tracking the ordered set of locks held (``with`` blocks plus
   statement-level ``acquire()``/``release()``), local variable types,
   and local lock bindings.  The walk records per-function *summaries*:
   lock acquisitions (with the locks already held at that point), call
   sites (with held sets), and potential blocking operations.

2. **Fixpoint propagation**: held-lock sets flow over the call graph —
   if ``f`` calls ``g`` while holding ``L``, then ``g`` (and everything
   it reaches) runs with ``L`` held.  Each inherited lock remembers one
   witness predecessor ``(caller, call line)`` so findings can print the
   full call chain from the holder down to the hazard.

3. **Graph construction**: acquiring ``B`` while holding ``A`` adds the
   lock-order edge ``A → B``; any cycle in the resulting digraph is a
   potential deadlock (WPLG01).  Blocking operations whose effective
   held set is non-empty — after exempting a ``Condition.wait`` on the
   sole held lock, which is the sanctioned wait pattern — become WPLG02
   hazards.

Known precision limits (documented in docs/static_analysis.md): lock
identity is per *class attribute*, not per instance, so two instances of
the same class are one node — same-lock self-edges are therefore skipped
rather than reported as deadlocks; ``acquire``/``release`` are tracked
only as statements, not inside expressions.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.graph.callgraph import (
    EXT,
    FILE_HANDLE,
    FunctionInfo,
    LockId,
    Resolver,
    Symbols,
)
from repro.analysis.graph.config import (
    BLOCKING_BUILTINS,
    BLOCKING_CALLS_ALWAYS,
    BLOCKING_METHODS_TIMEOUT,
    ENGINE_RUN_CLASSES,
    GraphConfig,
    IO_RECEIVER_HINTS,
)

#: Chain step: (function qname, line in that function).
ChainStep = Tuple[str, int]


class Acquisition:
    __slots__ = ("lock", "line", "held_before")

    def __init__(self, lock: LockId, line: int, held_before: Tuple[LockId, ...]) -> None:
        self.lock = lock
        self.line = line
        self.held_before = held_before


class CallSite:
    __slots__ = ("line", "targets", "held")

    def __init__(self, line: int, targets: Tuple[str, ...], held: Tuple[LockId, ...]) -> None:
        self.line = line
        self.targets = targets
        self.held = held


class BlockingOp:
    """One potentially-blocking operation found in a function body.

    ``waits_on`` is the condition's underlying lock for ``wait()`` calls
    — waiting on the *sole* held lock is the sanctioned pattern and is
    exempted when the effective held set is exactly ``{waits_on}``.
    """

    __slots__ = ("line", "description", "held", "waits_on")

    def __init__(
        self,
        line: int,
        description: str,
        held: Tuple[LockId, ...],
        waits_on: Optional[LockId],
    ) -> None:
        self.line = line
        self.description = description
        self.held = held
        self.waits_on = waits_on


class FunctionSummary:
    __slots__ = ("func", "acquisitions", "calls", "blocking")

    def __init__(self, func: FunctionInfo) -> None:
        self.func = func
        self.acquisitions: List[Acquisition] = []
        self.calls: List[CallSite] = []
        self.blocking: List[BlockingOp] = []


class LockOrderEdge:
    """``src`` is held when ``dst`` is acquired; ``chain`` is the witness
    call path ending at the acquiring function and line."""

    __slots__ = ("src", "dst", "chain")

    def __init__(self, src: LockId, dst: LockId, chain: List[ChainStep]) -> None:
        self.src = src
        self.dst = dst
        self.chain = chain


class DeadlockCycle:
    __slots__ = ("locks", "edges")

    def __init__(self, locks: List[str], edges: List[LockOrderEdge]) -> None:
        self.locks = locks
        self.edges = edges


class BlockingHazard:
    __slots__ = ("func", "line", "description", "locks", "chain")

    def __init__(
        self,
        func: str,
        line: int,
        description: str,
        locks: List[LockId],
        chain: List[ChainStep],
    ) -> None:
        self.func = func
        self.line = line
        self.description = description
        self.locks = locks
        self.chain = chain


class LockReport:
    """Everything the lock passes computed, pre-findings."""

    def __init__(self) -> None:
        self.summaries: Dict[str, FunctionSummary] = {}
        self.edges: Dict[Tuple[str, str], LockOrderEdge] = {}
        self.cycles: List[DeadlockCycle] = []
        self.hazards: List[BlockingHazard] = []
        self.call_edge_count = 0
        self.lock_names: Set[str] = set()

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self.edges

    def has_path(self, src: str, dst: str) -> bool:
        """Reachability in the lock-order graph (for contract checks)."""
        seen = {src}
        queue = [src]
        while queue:
            current = queue.pop()
            for (a, b) in self.edges:
                if a == current and b not in seen:
                    if b == dst:
                        return True
                    seen.add(b)
                    queue.append(b)
        return False


class LockAnalysis:
    def __init__(self, symbols: Symbols, resolver: Resolver, config: GraphConfig) -> None:
        self.symbols = symbols
        self.resolver = resolver
        self.config = config
        self.report = LockReport()

    def run(self) -> LockReport:
        roots = [
            info
            for qname, info in sorted(self.symbols.functions.items())
            if info.parent is None
        ]
        for info in roots:
            _FunctionWalker(self, info).walk({}, {})
        entry_holds = self._propagate()
        self._build_edges(entry_holds)
        self._find_cycles()
        self._find_hazards(entry_holds)
        return self.report

    # -- pass 2: fixpoint propagation ---------------------------------------

    def _propagate(self) -> Dict[str, Dict[LockId, ChainStep]]:
        """``entry_holds[f][lock] = (caller, line)`` — one witness per
        lock inherited from some caller."""
        entry_holds: Dict[str, Dict[LockId, ChainStep]] = {
            qname: {} for qname in self.report.summaries
        }
        worklist = sorted(self.report.summaries)
        seen_edges: Set[Tuple[str, str]] = set()
        while worklist:
            caller = worklist.pop(0)
            summary = self.report.summaries[caller]
            inherited = entry_holds[caller]
            for site in summary.calls:
                effective = dict.fromkeys(site.held)
                for lock in inherited:
                    effective.setdefault(lock)
                for target in site.targets:
                    if target not in entry_holds:
                        continue
                    seen_edges.add((caller, target))
                    changed = False
                    for lock in effective:
                        if lock not in entry_holds[target]:
                            entry_holds[target][lock] = (caller, site.line)
                            changed = True
                    if changed and target not in worklist:
                        worklist.append(target)
        self.report.call_edge_count = len(seen_edges)
        return entry_holds

    def _witness_chain(
        self,
        entry_holds: Dict[str, Dict[LockId, ChainStep]],
        func: str,
        lock: LockId,
        final_line: int,
    ) -> List[ChainStep]:
        """Call chain from the lock-holding function down to ``func`` at
        ``final_line``."""
        chain: List[ChainStep] = [(func, final_line)]
        current = func
        visited = {func}
        while lock in entry_holds.get(current, {}):
            caller, line = entry_holds[current][lock]
            if caller in visited:
                break
            chain.insert(0, (caller, line))
            visited.add(caller)
            current = caller
        return chain

    # -- pass 3: lock-order graph -------------------------------------------

    def _build_edges(self, entry_holds: Dict[str, Dict[LockId, ChainStep]]) -> None:
        for qname in sorted(self.report.summaries):
            summary = self.report.summaries[qname]
            for acq in summary.acquisitions:
                self.report.lock_names.add(acq.lock.name)
                prior: Dict[LockId, bool] = dict.fromkeys(acq.held_before, True)
                for lock in entry_holds.get(qname, {}):
                    prior.setdefault(lock, False)
                for held, local in prior.items():
                    if held == acq.lock:
                        continue  # per-class identity: see module docstring
                    key = (held.name, acq.lock.name)
                    if key in self.report.edges:
                        continue
                    if local:
                        chain = [(qname, acq.line)]
                    else:
                        chain = self._witness_chain(
                            entry_holds, qname, held, acq.line
                        )
                    self.report.edges[key] = LockOrderEdge(held, acq.lock, chain)

    def _find_cycles(self) -> None:
        """Report each 2-cycle once; larger SCCs get one representative
        cycle each (deterministic: smallest lock name first)."""
        graph: Dict[str, Set[str]] = {}
        for (src, dst) in self.report.edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        reported: Set[FrozenSet[str]] = set()
        for (src, dst) in sorted(self.report.edges):
            if (dst, src) in self.report.edges:
                key = frozenset((src, dst))
                if key in reported:
                    continue
                reported.add(key)
                first, second = sorted((src, dst))
                self.report.cycles.append(
                    DeadlockCycle(
                        [first, second],
                        [
                            self.report.edges[(first, second)],
                            self.report.edges[(second, first)],
                        ],
                    )
                )
        # Longer cycles: DFS from each node, smallest-first, skipping any
        # cycle whose lock set was already reported via a 2-cycle.
        for start in sorted(graph):
            path: List[str] = []
            on_path: Set[str] = set()

            def dfs(node: str) -> Optional[List[str]]:
                path.append(node)
                on_path.add(node)
                for nxt in sorted(graph.get(node, ())):
                    if nxt == start and len(path) > 2:
                        return list(path)
                    if nxt not in on_path and nxt > start:
                        found = dfs(nxt)
                        if found is not None:
                            return found
                path.pop()
                on_path.discard(node)
                return None

            cycle = dfs(start)
            if cycle is not None:
                key = frozenset(cycle)
                if key not in reported and not any(
                    key >= done for done in reported
                ):
                    reported.add(key)
                    edges = [
                        self.report.edges[(cycle[i], cycle[(i + 1) % len(cycle)])]
                        for i in range(len(cycle))
                    ]
                    self.report.cycles.append(DeadlockCycle(cycle, edges))

    # -- pass 3b: blocking hazards ------------------------------------------

    def _find_hazards(self, entry_holds: Dict[str, Dict[LockId, ChainStep]]) -> None:
        for qname in sorted(self.report.summaries):
            summary = self.report.summaries[qname]
            inherited = entry_holds.get(qname, {})
            for op in summary.blocking:
                effective: Dict[LockId, bool] = dict.fromkeys(op.held, True)
                for lock in inherited:
                    effective.setdefault(lock, False)
                offending = [
                    lock
                    for lock in effective
                    if op.waits_on is None or lock != op.waits_on
                ]
                if not offending:
                    continue
                witness_lock = min(offending, key=lambda lock: lock.name)
                if effective[witness_lock]:
                    chain = [(qname, op.line)]
                else:
                    chain = self._witness_chain(
                        entry_holds, qname, witness_lock, op.line
                    )
                self.report.hazards.append(
                    BlockingHazard(
                        qname,
                        op.line,
                        op.description,
                        sorted(offending, key=lambda lock: lock.name),
                        chain,
                    )
                )


def _call_kwarg(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _has_timeout(method: str, call: ast.Call) -> bool:
    """Does this call pass a timeout (so it cannot block unboundedly)?"""
    if _call_kwarg(call, "timeout"):
        return True
    npos = len(call.args)
    if method in ("wait", "join", "wait_zero"):
        return npos >= 1
    if method == "get":
        return npos >= 2  # get(block, timeout)
    if method == "put":
        return npos >= 3  # put(item, block, timeout)
    return False


class _FunctionWalker:
    """Flow-sensitive single-function walk building a summary.

    Nested function definitions are walked inline with a snapshot of the
    enclosing local/lock environments (closure capture) but an *empty*
    held set — a closure runs when called, not when defined; propagation
    supplies the caller's locks.
    """

    def __init__(self, analysis: LockAnalysis, func: FunctionInfo) -> None:
        self.analysis = analysis
        self.resolver = analysis.resolver
        self.symbols = analysis.symbols
        self.func = func
        self.summary = FunctionSummary(func)
        analysis.report.summaries[func.qname] = self.summary
        self.env: Dict[str, FrozenSet[str]] = {}
        self.lock_env: Dict[str, LockId] = {}

    def walk(
        self,
        outer_env: Dict[str, FrozenSet[str]],
        outer_lock_env: Dict[str, LockId],
    ) -> None:
        self.env.update(outer_env)
        self.lock_env.update(outer_lock_env)
        body = getattr(self.func.node, "body", [])
        self._seed_local_locks(body)
        self._block(body, ())

    def _seed_local_locks(self, body: Sequence[ast.stmt]) -> None:
        """Pre-bind ``name = threading.Lock()``-style locals before the
        flow walk, so a closure defined *above* the assignment still sees
        the lock when its body is walked at the ``def`` site."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested scopes seed from their own walk
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                lock = self.resolver.local_lock(
                    self.func, node.targets[0].id, node.value, self.env, self.lock_env
                )
                if lock is not None:
                    self.lock_env.setdefault(node.targets[0].id, lock)
            stack.extend(ast.iter_child_nodes(node))

    # -- statements ----------------------------------------------------------

    def _block(self, stmts: Sequence[ast.stmt], held: Tuple[LockId, ...]) -> None:
        for stmt in stmts:
            held = self._stmt(stmt, held)

    def _stmt(self, stmt: ast.stmt, held: Tuple[LockId, ...]) -> Tuple[LockId, ...]:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                self._expr(item.context_expr, inner)
                lock = None
                if isinstance(item.context_expr, (ast.Attribute, ast.Name)):
                    lock = self.resolver.lock_for(
                        self.func, item.context_expr, self.env, self.lock_env
                    )
                if lock is not None and lock not in inner:
                    self.summary.acquisitions.append(
                        Acquisition(lock, stmt.lineno, inner)
                    )
                    inner = inner + (lock,)
            self._block(stmt.body, inner)
            return held
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, held)
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                lock = self.resolver.local_lock(
                    self.func, name, stmt.value, self.env, self.lock_env
                )
                if lock is not None:
                    self.lock_env[name] = lock
                else:
                    self.lock_env.pop(name, None)
                    self.env[name] = self.resolver.expr_types(
                        self.func, stmt.value, self.env
                    )
            return held
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, held)
            if isinstance(stmt.target, ast.Name):
                types = self.resolver.annotation_types(
                    self.func.module, stmt.annotation
                )
                if stmt.value is not None:
                    lock = self.resolver.local_lock(
                        self.func, stmt.target.id, stmt.value, self.env, self.lock_env
                    )
                    if lock is not None:
                        self.lock_env[stmt.target.id] = lock
                        return held
                    types = types | self.resolver.expr_types(
                        self.func, stmt.value, self.env
                    )
                self.env[stmt.target.id] = types
            return held
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, held)
            return held
        if isinstance(stmt, ast.Expr):
            # Statement-level acquire()/release() drive the held set.
            value = stmt.value
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
                method = value.func.attr
                if method in ("acquire", "release") and isinstance(
                    value.func.value, (ast.Attribute, ast.Name)
                ):
                    lock = self.resolver.lock_for(
                        self.func, value.func.value, self.env, self.lock_env
                    )
                    if lock is not None:
                        if method == "acquire":
                            if lock not in held:
                                self.summary.acquisitions.append(
                                    Acquisition(lock, stmt.lineno, held)
                                )
                                return held + (lock,)
                            return held
                        return tuple(h for h in held if h != lock)
            self._expr(value, held)
            return held
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if getattr(stmt, "value", None) is not None:
                self._expr(stmt.value, held)
            if getattr(stmt, "exc", None) is not None:
                self._expr(stmt.exc, held)
            return held
        if isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test, held)
            self._block(stmt.body, held)
            self._block(stmt.orelse, held)
            return held
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, held)
            self._block(stmt.body, held)
            self._block(stmt.orelse, held)
            return held
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            self._block(stmt.body, held)
            for handler in stmt.handlers:
                self._block(handler.body, held)
            self._block(stmt.orelse, held)
            self._block(stmt.finalbody, held)
            return held
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = self.func.nested.get(stmt.name)
            if nested is not None:
                walker = _FunctionWalker(self.analysis, nested)
                walker.walk(dict(self.env), dict(self.lock_env))
            return held
        if isinstance(stmt, ast.Assert):
            self._expr(stmt.test, held)
            return held
        if isinstance(stmt, ast.Delete):
            return held
        if isinstance(stmt, ast.ClassDef):
            return held
        # Remaining simple statements may still carry expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child, held)
        return held

    # -- expressions ---------------------------------------------------------

    def _expr(self, node: ast.expr, held: Tuple[LockId, ...]) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._call(child, held)

    def _call(self, call: ast.Call, held: Tuple[LockId, ...]) -> None:
        res = self.resolver.resolve_call(self.func, call, self.env)
        if res.targets:
            self.summary.calls.append(
                CallSite(call.lineno, tuple(sorted(res.targets)), held)
            )
        self._classify_blocking(call, res, held)

    def _classify_blocking(self, call, res, held: Tuple[LockId, ...]) -> None:
        method = res.method_name
        line = call.lineno
        # open() and catalogued ext-module calls (time.sleep, os.replace).
        if res.ext_callable is not None:
            tail = res.ext_callable.rsplit(".", 1)[-1]
            if res.ext_callable in BLOCKING_BUILTINS:
                self._blocking(line, BLOCKING_BUILTINS[res.ext_callable], held, None)
                return
            if res.ext_callable.startswith(FILE_HANDLE):
                if tail in ("read", "write", "readline", "readlines", "flush"):
                    self._blocking(
                        line, f"file {tail}() under a lock", held, None
                    )
                return
            if tail in BLOCKING_CALLS_ALWAYS and not res.ext_callable.startswith(
                EXT + "threading"
            ):
                if tail in BLOCKING_METHODS_TIMEOUT and _has_timeout(tail, call):
                    return
                self._blocking(line, BLOCKING_CALLS_ALWAYS[tail], held, None)
                return
        if method is None:
            return
        receiver = call.func.value if isinstance(call.func, ast.Attribute) else None
        # Engine run() — flagged even though the body is also analyzed,
        # because an engine run under any lock is always a hazard.
        if method == "run" and res.receiver_types & frozenset(ENGINE_RUN_CLASSES):
            self._blocking(line, BLOCKING_CALLS_ALWAYS["run"], held, None)
            return
        if method not in BLOCKING_METHODS_TIMEOUT or method == "acquire":
            self._maybe_io_hint(call, res, held)
            return
        if _has_timeout(method, call):
            return
        waits_on = None
        if method == "wait" and receiver is not None:
            waits_on = self.resolver.lock_for(
                self.func, receiver, self.env, self.lock_env
            )
            if waits_on is None and not res.receiver_types:
                return  # wait() on something we cannot see — stay quiet
        if res.targets and method in ("get", "put"):
            return  # project implementation — its body is analyzed
        if method in ("get", "put"):
            project_ext = any(
                r.startswith(EXT + "queue.") for r in res.receiver_types
            )
            if not project_ext:
                return  # dict.get()/list-ish put noise
        if method == "join":
            thread_like = any(
                r.startswith(EXT + "threading.") for r in res.receiver_types
            )
            if not thread_like and not self._receiver_hint(receiver, ("thread", "worker", "t")):
                return
        self._blocking(
            line, BLOCKING_METHODS_TIMEOUT[method], held, waits_on
        )

    def _maybe_io_hint(self, call, res, held: Tuple[LockId, ...]) -> None:
        """``read``/``write`` on handle-ish receivers of unknown type."""
        method = res.method_name
        if method not in ("read", "write", "readline", "flush"):
            return
        if res.targets or res.receiver_types:
            return
        receiver = call.func.value if isinstance(call.func, ast.Attribute) else None
        if self._receiver_hint(receiver, IO_RECEIVER_HINTS):
            self._blocking(
                call.lineno, f"file/socket {method}() under a lock", held, None
            )

    def _receiver_hint(self, receiver, hints) -> bool:
        name = ""
        if isinstance(receiver, ast.Name):
            name = receiver.id
        elif isinstance(receiver, ast.Attribute):
            name = receiver.attr
        name = name.lower().lstrip("_")
        return any(name == hint or hint in name for hint in hints)

    def _blocking(
        self,
        line: int,
        description: str,
        held: Tuple[LockId, ...],
        waits_on: Optional[LockId],
    ) -> None:
        self.summary.blocking.append(BlockingOp(line, description, held, waits_on))
