"""Symbol tables, type inference, and call resolution.

This module turns a :class:`~repro.analysis.graph.project.Project` into
the naming layer the lock analysis runs on:

- :class:`Symbols` — every class and function in the project (including
  nested closures, qnamed ``outer.<locals>.inner``), base-class links,
  per-class attribute sources, and lock-attribute classification
  (``self._lock = threading.Lock()`` and friends, including
  ``Condition(self._lock)`` aliasing and locks received via annotated
  constructor parameters);
- :class:`Resolver` — candidate-set expression typing (``self.attr`` via
  ``__init__`` assignments and annotations, locals via constructor calls,
  call results via return annotations or config overrides) and call
  resolution (``self.m()`` with base-class lookup *and* subclass
  dispatch, module-alias calls, sibling closures, configured callback
  bindings).

Everything is a deliberate over-approximation: a call site resolves to
the set of methods it *could* reach, which is the right direction for a
deadlock analysis — missing an edge hides a deadlock, an extra edge at
worst costs a baseline entry.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.graph.config import GraphConfig
from repro.analysis.graph.project import Project, SourceModule

#: Type marker for values produced by ``open(...)``.
FILE_HANDLE = "<file>"
#: Prefix for non-project (stdlib) classes: ``ext:threading.Thread``.
EXT = "ext:"

_LOCK_CTORS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "Semaphore": "semaphore",
    "BoundedSemaphore": "semaphore",
}

_EMPTY: FrozenSet[str] = frozenset()


class LockId:
    """Stable identity of one lock: a class attribute or a local.

    ``name`` is the fingerprint-stable identity — the *defining* class's
    qname plus attribute (``repro.core.queues.MatchQueue._lock``) so a
    lock inherited or aliased through a Condition unifies with its
    definition; locals use ``<func qname>.<local name>``.
    """

    __slots__ = ("name", "kind")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LockId) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"LockId({self.name}, {self.kind})"


class LockAttr:
    """Classification of one class attribute as a lock."""

    __slots__ = ("kind", "alias_attr", "owner")

    def __init__(self, kind: str, alias_attr: Optional[str], owner: str) -> None:
        self.kind = kind
        self.alias_attr = alias_attr  # Condition(self.X) aliases attr X
        self.owner = owner  # defining class qname


class FunctionInfo:
    """One function/method/closure definition."""

    __slots__ = (
        "qname",
        "module",
        "node",
        "owner",
        "parent",
        "nested",
        "param_annotations",
        "return_annotation",
    )

    def __init__(
        self,
        qname: str,
        module: SourceModule,
        node: ast.AST,
        owner: Optional[str],
        parent: Optional["FunctionInfo"],
    ) -> None:
        self.qname = qname
        self.module = module
        self.node = node
        self.owner = owner  # enclosing class qname, if a method/closure of one
        self.parent = parent  # enclosing FunctionInfo for closures
        self.nested: Dict[str, "FunctionInfo"] = {}
        args = node.args
        self.param_annotations: Dict[str, Optional[ast.expr]] = {}
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            self.param_annotations[arg.arg] = arg.annotation
        self.return_annotation: Optional[ast.expr] = node.returns

    def __repr__(self) -> str:
        return f"FunctionInfo({self.qname})"


class ClassInfo:
    """One class definition with attribute and lock knowledge."""

    __slots__ = (
        "qname",
        "module",
        "node",
        "base_exprs",
        "bases",
        "methods",
        "attr_sources",
        "attr_annotations",
        "lock_attrs",
    )

    def __init__(self, qname: str, module: SourceModule, node: ast.ClassDef) -> None:
        self.qname = qname
        self.module = module
        self.node = node
        self.base_exprs: List[ast.expr] = list(node.bases)
        self.bases: List[str] = []  # resolved project-class qnames
        self.methods: Dict[str, FunctionInfo] = {}
        #: attr -> [(method, value expr)] from ``self.attr = expr``.
        self.attr_sources: Dict[str, List[Tuple[FunctionInfo, ast.expr]]] = {}
        #: attr -> annotation expr (``self.attr: T`` or class-level).
        self.attr_annotations: Dict[str, ast.expr] = {}
        self.lock_attrs: Dict[str, LockAttr] = {}

    def __repr__(self) -> str:
        return f"ClassInfo({self.qname})"


class CallResolution:
    """Everything the analyzer wants to know about one call site."""

    __slots__ = (
        "targets",
        "receiver_types",
        "method_name",
        "ext_callable",
        "result_types",
        "via_callback",
    )

    def __init__(self) -> None:
        self.targets: Set[str] = set()  # project function qnames
        self.receiver_types: FrozenSet[str] = _EMPTY
        self.method_name: Optional[str] = None
        self.ext_callable: Optional[str] = None  # "time.sleep", "os.replace"
        self.result_types: FrozenSet[str] = _EMPTY
        self.via_callback = False  # resolved through config callback_bindings


class Symbols:
    """All classes/functions of a project plus hierarchy indexes."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.subclasses: Dict[str, Set[str]] = {}
        for name in sorted(project.modules):
            self._scan_module(project.modules[name])
        self._resolve_bases()
        self._classify_locks()

    # -- construction --------------------------------------------------------

    def _scan_module(self, module: SourceModule) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(module, stmt, f"{module.name}.{stmt.name}", None, None)
            elif isinstance(stmt, ast.ClassDef):
                self._scan_class(module, stmt)

    def _scan_class(self, module: SourceModule, node: ast.ClassDef) -> None:
        qname = f"{module.name}.{node.name}"
        info = ClassInfo(qname, module, node)
        self.classes[qname] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._scan_function(
                    module, stmt, f"{qname}.{stmt.name}", qname, None
                )
                info.methods[stmt.name] = method
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                info.attr_annotations.setdefault(stmt.target.id, stmt.annotation)

    def _scan_function(
        self,
        module: SourceModule,
        node: ast.AST,
        qname: str,
        owner: Optional[str],
        parent: Optional[FunctionInfo],
    ) -> FunctionInfo:
        info = FunctionInfo(qname, module, node, owner, parent)
        self.functions[qname] = info
        for child in _direct_functions(node):
            nested = self._scan_function(
                module,
                child,
                f"{qname}.<locals>.{child.name}",
                owner,
                info,
            )
            info.nested[child.name] = nested
        return info

    def _resolve_bases(self) -> None:
        for info in self.classes.values():
            for base in info.base_exprs:
                resolved = self._resolve_dotted(info.module, base)
                if resolved and resolved in self.classes:
                    info.bases.append(resolved)
                    self.subclasses.setdefault(resolved, set()).add(info.qname)

    def _resolve_dotted(
        self, module: SourceModule, node: ast.expr
    ) -> Optional[str]:
        """Resolve ``Name`` / ``alias.Attr`` to a dotted project name."""
        if isinstance(node, ast.Name):
            local = f"{module.name}.{node.id}"
            if local in self.classes or local in self.functions:
                return local
            return module.bindings.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._resolve_dotted(module, node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    # -- lock classification -------------------------------------------------

    def _classify_locks(self) -> None:
        for info in self.classes.values():
            for method in info.methods.values():
                for stmt in ast.walk(method.node):
                    target_attr: Optional[str] = None
                    value: Optional[ast.expr] = None
                    annotation: Optional[ast.expr] = None
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        target, value = stmt.targets[0], stmt.value
                        if _is_self_attr(target):
                            target_attr = target.attr
                    elif isinstance(stmt, ast.AnnAssign):
                        if _is_self_attr(stmt.target):
                            target_attr = stmt.target.attr
                            value = stmt.value
                            annotation = stmt.annotation
                    if target_attr is None:
                        continue
                    if annotation is not None:
                        info.attr_annotations.setdefault(target_attr, annotation)
                    if value is not None:
                        info.attr_sources.setdefault(target_attr, []).append(
                            (method, value)
                        )
                        lock = self._lock_from_value(info, method, value)
                        if lock is not None:
                            info.lock_attrs.setdefault(target_attr, lock)

    def _lock_from_value(
        self, info: ClassInfo, method: FunctionInfo, value: ast.expr
    ) -> Optional[LockAttr]:
        """Classify ``self.X = <value>`` as a lock, if it is one."""
        kind = lock_ctor_kind(method.module, value)
        if kind is not None:
            alias_attr = None
            if kind == "condition" and isinstance(value, ast.Call) and value.args:
                first = value.args[0]
                if _is_self_attr(first):
                    alias_attr = first.attr
            return LockAttr(kind, alias_attr, info.qname)
        # ``self._lock = lock`` where the parameter is annotated as a
        # threading lock (metrics instruments receive stripe locks).
        if isinstance(value, ast.Name):
            annotation = method.param_annotations.get(value.id)
            param_kind = _annotation_lock_kind(annotation)
            if param_kind is not None:
                return LockAttr(param_kind, None, info.qname)
        return None

    # -- hierarchy lookups ---------------------------------------------------

    def mro(self, qname: str) -> List[str]:
        """BFS linearization over project-resolved bases."""
        out: List[str] = []
        queue = [qname]
        while queue:
            current = queue.pop(0)
            if current in out:
                continue
            out.append(current)
            info = self.classes.get(current)
            if info is not None:
                queue.extend(info.bases)
        return out

    def method_impl(self, cls: str, name: str) -> Optional[FunctionInfo]:
        for candidate in self.mro(cls):
            info = self.classes.get(candidate)
            if info is not None and name in info.methods:
                return info.methods[name]
        return None

    def transitive_subclasses(self, cls: str) -> Set[str]:
        out: Set[str] = set()
        queue = [cls]
        while queue:
            for sub in self.subclasses.get(queue.pop(), ()):
                if sub not in out:
                    out.add(sub)
                    queue.append(sub)
        return out

    def dispatch(self, cls: str, name: str) -> Set[str]:
        """All implementations a ``<cls instance>.name()`` call may hit."""
        targets: Set[str] = set()
        impl = self.method_impl(cls, name)
        if impl is not None:
            targets.add(impl.qname)
        for sub in self.transitive_subclasses(cls):
            info = self.classes.get(sub)
            if info is not None and name in info.methods:
                targets.add(info.methods[name].qname)
        return targets

    def lock_attr(self, cls: str, attr: str) -> Optional[LockAttr]:
        """Look up a lock attribute through the base-class chain,
        following Condition→lock aliases to the underlying lock."""
        for candidate in self.mro(cls):
            info = self.classes.get(candidate)
            if info is None or attr not in info.lock_attrs:
                continue
            lock = info.lock_attrs[attr]
            if lock.alias_attr is not None and lock.alias_attr != attr:
                aliased = self.lock_attr(cls, lock.alias_attr)
                if aliased is not None:
                    return aliased
            return lock
        return None


def _direct_functions(node: ast.AST) -> List[ast.AST]:
    """Function defs nested directly in ``node``'s body blocks (not in
    further nested functions)."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop(0)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(child)
            continue  # don't descend — its own scan handles deeper defs
        if isinstance(child, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(child))
    return out


def _ordered_stmts(node: ast.AST):
    """All statements in ``node``'s body in source order, descending into
    compound statements but not into nested function/class scopes."""
    stack = list(reversed(getattr(node, "body", [])))
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        blocks = [getattr(stmt, "finalbody", [])]
        for handler in getattr(stmt, "handlers", []) or []:
            blocks.append(handler.body)
        blocks.append(getattr(stmt, "orelse", []))
        blocks.append(getattr(stmt, "body", []))
        for block in blocks:
            if isinstance(block, list):
                stack.extend(reversed(block))


def _is_self_attr(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def lock_ctor_kind(module: SourceModule, value: ast.expr) -> Optional[str]:
    """``threading.Lock()`` / bare imported ``Condition(...)`` → kind."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in module.threading_aliases:
            return _LOCK_CTORS.get(func.attr)
        return None
    if isinstance(func, ast.Name):
        original = module.threading_names.get(func.id)
        if original is not None:
            return _LOCK_CTORS.get(original)
    return None


def _annotation_lock_kind(annotation: Optional[ast.expr]) -> Optional[str]:
    """Does this annotation name a threading lock type?"""
    if annotation is None:
        return None
    for node in ast.walk(annotation):
        if isinstance(node, ast.Attribute) and node.attr in _LOCK_CTORS:
            return _LOCK_CTORS[node.attr]
        if isinstance(node, ast.Name) and node.id in _LOCK_CTORS:
            return _LOCK_CTORS[node.id]
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            for ctor, kind in _LOCK_CTORS.items():
                if ctor in node.value:
                    return kind
    return None


class Resolver:
    """Expression typing and call resolution over a :class:`Symbols`."""

    def __init__(self, symbols: Symbols, config: GraphConfig) -> None:
        self.symbols = symbols
        self.config = config
        self._attr_cache: Dict[Tuple[str, str], FrozenSet[str]] = {}
        self._attr_in_progress: Set[Tuple[str, str]] = set()
        self._env_cache: Dict[str, Dict[str, FrozenSet[str]]] = {}

    # -- annotations ---------------------------------------------------------

    def annotation_types(
        self, module: SourceModule, node: Optional[ast.expr]
    ) -> FrozenSet[str]:
        if node is None:
            return _EMPTY
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return _EMPTY
            return self.annotation_types(module, parsed)
        if isinstance(node, ast.Subscript):
            head = self._annotation_head(module, node.value)
            if head in ("Optional", "Union", "List", "Sequence", "Iterable",
                        "Iterator", "Tuple", "Set", "FrozenSet", "Type",
                        "ClassVar", "Final", "Annotated"):
                return self._slice_types(module, node.slice)
            # Generic project class: ``MetricFamily[Counter]`` → the family.
            return self.annotation_types(module, node.value)
        if isinstance(node, (ast.Name, ast.Attribute)):
            resolved = self.symbols._resolve_dotted(module, node)
            if resolved is not None and resolved in self.symbols.classes:
                return frozenset({resolved})
            if isinstance(node, ast.Name):
                original = module.threading_names.get(node.id)
                if original is not None:
                    return frozenset({f"{EXT}threading.{original}"})
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                base = node.value.id
                if base in module.threading_aliases:
                    return frozenset({f"{EXT}threading.{node.attr}"})
                ext = module.ext_modules.get(base)
                if ext is not None:
                    return frozenset({f"{EXT}{ext}.{node.attr}"})
            return _EMPTY
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            # PEP 604 unions: ``X | None``.
            return self.annotation_types(module, node.left) | self.annotation_types(
                module, node.right
            )
        return _EMPTY

    def _annotation_head(self, module: SourceModule, node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return ""

    def _slice_types(self, module: SourceModule, node: ast.expr) -> FrozenSet[str]:
        if isinstance(node, ast.Tuple):
            out: Set[str] = set()
            for element in node.elts:
                out |= self.annotation_types(module, element)
            return frozenset(out)
        return self.annotation_types(module, node)

    # -- attribute types -----------------------------------------------------

    def attr_types(self, cls: str, attr: str) -> FrozenSet[str]:
        key = (cls, attr)
        if key in self._attr_cache:
            return self._attr_cache[key]
        if key in self._attr_in_progress:
            return _EMPTY  # recursion (mutually-typed attributes)
        # A result computed while another attribute is mid-resolution may
        # have seen that attribute as empty through the recursion guard —
        # return it, but do not cache the possibly-partial answer.
        tainted = bool(self._attr_in_progress)
        self._attr_in_progress.add(key)
        try:
            out: Set[str] = set()
            for candidate in self.symbols.mro(cls):
                info = self.symbols.classes.get(candidate)
                if info is None:
                    continue
                annotation = info.attr_annotations.get(attr)
                if annotation is not None:
                    out |= self.annotation_types(info.module, annotation)
                for method, value in info.attr_sources.get(attr, ()):
                    out |= self.expr_types(method, value, self.method_env(method))
                if annotation is not None or attr in info.attr_sources:
                    break  # nearest definition wins, like runtime lookup
            result = frozenset(out)
        finally:
            self._attr_in_progress.discard(key)
        if not tainted:
            self._attr_cache[key] = result
        return result

    def method_env(self, func: FunctionInfo) -> Dict[str, FrozenSet[str]]:
        """Local-variable types of ``func``'s body, in source order —
        lets ``self.attr = <expr using locals>`` sources resolve (e.g.
        ``registry = self.obs.registry`` before the instrument attrs)."""
        cached = self._env_cache.get(func.qname)
        if cached is not None:
            return cached
        # Same taint rule as attr_types: an env built while an attribute
        # is mid-resolution may contain guard-empty results (e.g.
        # ``registry = self.obs.registry`` while typing ``obs``), so it
        # must not be cached.
        tainted = bool(self._attr_in_progress)
        self._env_cache[func.qname] = {}  # recursion guard
        env: Dict[str, FrozenSet[str]] = {}
        for stmt in _ordered_stmts(func.node):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                env[stmt.targets[0].id] = self.expr_types(func, stmt.value, env)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                env[stmt.target.id] = self.annotation_types(
                    func.module, stmt.annotation
                )
        if tainted:
            del self._env_cache[func.qname]
        else:
            self._env_cache[func.qname] = env
        return env

    # -- expressions ---------------------------------------------------------

    def expr_types(
        self,
        func: FunctionInfo,
        node: ast.expr,
        env: Dict[str, FrozenSet[str]],
    ) -> FrozenSet[str]:
        if isinstance(node, ast.Name):
            if node.id == "self" and func.owner is not None:
                return frozenset({func.owner})
            if node.id in env:
                return env[node.id]
            annotation = func.param_annotations.get(node.id)
            if annotation is not None:
                return self.annotation_types(func.module, annotation)
            # Closure parameter/local of an enclosing scope: best effort
            # through the enclosing function's annotations.
            parent = func.parent
            while parent is not None:
                annotation = parent.param_annotations.get(node.id)
                if annotation is not None:
                    return self.annotation_types(parent.module, annotation)
                parent = parent.parent
            return _EMPTY
        if isinstance(node, ast.Attribute):
            receivers = self.expr_types(func, node.value, env)
            out: Set[str] = set()
            for receiver in receivers:
                if receiver in self.symbols.classes:
                    out |= self.attr_types(receiver, node.attr)
            return frozenset(out)
        if isinstance(node, ast.Call):
            return self.resolve_call(func, node, env).result_types
        if isinstance(node, ast.IfExp):
            return self.expr_types(func, node.body, env) | self.expr_types(
                func, node.orelse, env
            )
        if isinstance(node, ast.BoolOp):
            out = set()
            for value in node.values:
                out |= self.expr_types(func, value, env)
            return frozenset(out)
        if isinstance(node, ast.Await):
            return self.expr_types(func, node.value, env)
        if isinstance(node, ast.NamedExpr):
            return self.expr_types(func, node.value, env)
        return _EMPTY

    # -- call resolution -----------------------------------------------------

    def resolve_call(
        self,
        func: FunctionInfo,
        call: ast.Call,
        env: Dict[str, FrozenSet[str]],
    ) -> CallResolution:
        res = CallResolution()
        target = call.func
        if isinstance(target, ast.Name):
            self._resolve_name_call(func, target.id, res)
            return res
        if isinstance(target, ast.Attribute):
            self._resolve_attr_call(func, target, env, res)
            return res
        # Anything else (call of a call, subscript, lambda) — opaque.
        return res

    def _resolve_name_call(
        self, func: FunctionInfo, name: str, res: CallResolution
    ) -> None:
        # 1. Sibling/enclosing closures (nearest scope wins).
        scope: Optional[FunctionInfo] = func
        while scope is not None:
            if name in scope.nested:
                res.targets.add(scope.nested[name].qname)
                res.result_types = self._return_types(scope.nested[name])
                return
            scope = scope.parent
        module = func.module
        # 2. super() — typed as the owner's bases for the following attr.
        if name == "super" and func.owner is not None:
            info = self.symbols.classes.get(func.owner)
            if info is not None:
                res.result_types = frozenset(info.bases)
            return
        # 3. open() and other builtins.
        if name == "open":
            res.ext_callable = "open"
            res.result_types = frozenset({FILE_HANDLE})
            return
        # 4. Module-local / imported project symbols.
        resolved = self.symbols._resolve_dotted(module, ast.Name(id=name))
        if resolved is not None:
            self._add_dotted_target(resolved, res)
            return
        # 5. ``from threading import Thread`` style names.
        original = module.threading_names.get(name)
        if original is not None:
            res.ext_callable = f"threading.{original}"
            res.result_types = frozenset({f"{EXT}threading.{original}"})

    def _add_dotted_target(self, dotted: str, res: CallResolution) -> None:
        symbols = self.symbols
        if dotted in symbols.classes:
            ctor = symbols.method_impl(dotted, "__init__")
            if ctor is not None:
                res.targets.add(ctor.qname)
            res.result_types = frozenset({dotted})
            return
        if dotted in symbols.functions:
            info = symbols.functions[dotted]
            res.targets.add(dotted)
            res.result_types = self._return_types(info)

    def _resolve_attr_call(
        self,
        func: FunctionInfo,
        target: ast.Attribute,
        env: Dict[str, FrozenSet[str]],
        res: CallResolution,
    ) -> None:
        module = func.module
        res.method_name = target.attr
        value = target.value
        # Module-alias calls: threading.X(), time.sleep(), os.replace(),
        # and project-module functions (reporting.write_results(...)).
        if isinstance(value, ast.Name):
            if value.id in module.threading_aliases:
                res.ext_callable = f"threading.{target.attr}"
                res.result_types = frozenset({f"{EXT}threading.{target.attr}"})
                return
            ext = module.ext_modules.get(value.id)
            if ext is not None and value.id not in env:
                res.ext_callable = f"{ext}.{target.attr}"
                res.result_types = frozenset({f"{EXT}{ext}.{target.attr}"})
                return
            bound = self.symbols._resolve_dotted(module, value)
            if bound is not None and bound in self.symbols.project.modules:
                self._add_dotted_target(f"{bound}.{target.attr}", res)
                if res.targets or res.result_types:
                    return
            if bound is not None and bound in self.symbols.classes:
                # Class-name call: classmethod/staticmethod dispatch.
                impl = self.symbols.method_impl(bound, target.attr)
                if impl is not None:
                    res.targets.add(impl.qname)
                    res.result_types = self._return_types(impl)
                    return
        # Instance method call through candidate receiver types.
        receivers = self.expr_types(func, value, env)
        res.receiver_types = receivers
        results: Set[str] = set()
        for receiver in receivers:
            if receiver in self.symbols.classes:
                targets = self.symbols.dispatch(receiver, target.attr)
                if not targets:
                    bindings = self._callback_targets(receiver, target.attr)
                    if bindings:
                        res.via_callback = True
                        targets = bindings
                res.targets |= targets
                for qname in targets:
                    info = self.symbols.functions.get(qname)
                    if info is not None:
                        results |= self._return_types(info)
            elif receiver.startswith(EXT) or receiver == FILE_HANDLE:
                res.ext_callable = f"{receiver}.{target.attr}"
        res.result_types = frozenset(results)

    def _callback_targets(self, cls: str, attr: str) -> Set[str]:
        """Config-bound callable attributes, looked up through bases."""
        out: Set[str] = set()
        for candidate in self.symbols.mro(cls):
            bound = self.config.callback_bindings.get(f"{candidate}.{attr}")
            if bound:
                out |= {t for t in bound if t in self.symbols.functions}
        return out

    def _return_types(self, info: FunctionInfo) -> FrozenSet[str]:
        override = self.config.return_types.get(info.qname)
        if override is not None:
            return frozenset(t for t in override if t in self.symbols.classes)
        return self.annotation_types(info.module, info.return_annotation)

    # -- locks ---------------------------------------------------------------

    def lock_for(
        self,
        func: FunctionInfo,
        node: ast.expr,
        env: Dict[str, FrozenSet[str]],
        lock_env: Dict[str, LockId],
    ) -> Optional[LockId]:
        """The lock identity of ``node`` in a ``with``/acquire context."""
        if isinstance(node, ast.Name):
            if node.id in lock_env:
                return lock_env[node.id]
            # A lock captured from an enclosing closure scope is named by
            # the enclosing function; the locks walker seeds lock_env for
            # nested functions, so a miss here means "not a lock".
            return None
        if isinstance(node, ast.Attribute):
            receivers = self.expr_types(func, node.value, env)
            for receiver in receivers:
                if receiver not in self.symbols.classes:
                    continue
                lock = self.symbols.lock_attr(receiver, node.attr)
                if lock is not None:
                    # lock_attr() already followed Condition→lock aliases,
                    # so owner/kind describe the underlying lock.
                    name = f"{lock.owner}.{self._defining_attr(lock, node.attr)}"
                    return LockId(name, lock.kind)
        return None

    def _defining_attr(self, lock: LockAttr, attr: str) -> str:
        """The attribute name on the defining class for this lock."""
        info = self.symbols.classes.get(lock.owner)
        if info is None:
            return attr
        for name, candidate in info.lock_attrs.items():
            if candidate is lock:
                return name
        return attr

    def local_lock(
        self, func: FunctionInfo, name: str, value: ast.expr,
        env: Dict[str, FrozenSet[str]], lock_env: Dict[str, LockId],
    ) -> Optional[LockId]:
        """Classify ``name = <value>`` as a local lock binding."""
        kind = lock_ctor_kind(func.module, value)
        if kind is not None:
            if kind == "condition" and isinstance(value, ast.Call) and value.args:
                aliased = self.lock_for(func, value.args[0], env, lock_env)
                if aliased is not None:
                    return aliased
            return LockId(f"{func.qname}.<{name}>", kind)
        # Re-binding an existing lock object: ``lock = self._lock``.
        if isinstance(value, (ast.Attribute, ast.Name)):
            return self.lock_for(func, value, env, lock_env)
        return None
