"""Whole-program concurrency and layering analysis (``WPLG`` codes).

Run via ``python -m repro.analysis graph``; see
``docs/static_analysis.md`` for the propagation rules, known
false-positive shapes, and the baseline workflow.
"""

from repro.analysis.graph.analyzer import GraphAnalyzer, GraphResult
from repro.analysis.graph.config import DEFAULT_CONFIG, GraphConfig
from repro.analysis.graph.project import Project
from repro.analysis.graph.report import Baseline, GraphFinding, to_sarif

__all__ = [
    "Baseline",
    "DEFAULT_CONFIG",
    "GraphAnalyzer",
    "GraphConfig",
    "GraphFinding",
    "GraphResult",
    "Project",
    "to_sarif",
]
