"""Orchestrates the whole-program analysis: load → symbols → lock
analysis + layer check → findings, with suppression and baseline
filtering applied.

The result splits findings three ways:

- ``new`` — gate-failing findings (not suppressed, not baselined);
- ``baselined`` — matched the checked-in baseline (accepted debt);
- ``suppressed`` — silenced by an inline ``# wpl: noqa=WPLG0x``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.graph.callgraph import Resolver, Symbols
from repro.analysis.graph.config import DEFAULT_CONFIG, GraphConfig
from repro.analysis.graph.layers import check_layers
from repro.analysis.graph.locks import LockAnalysis, LockReport
from repro.analysis.graph.project import Project
from repro.analysis.graph.report import Baseline, GraphFinding


class GraphResult:
    def __init__(
        self,
        project: Project,
        lock_report: LockReport,
        new: List[GraphFinding],
        baselined: List[GraphFinding],
        suppressed: List[GraphFinding],
        stats: Dict[str, int],
    ) -> None:
        self.project = project
        self.lock_report = lock_report
        self.new = new
        self.baselined = baselined
        self.suppressed = suppressed
        self.stats = stats

    @property
    def all_findings(self) -> List[GraphFinding]:
        """Everything except suppressed — the baseline universe."""
        merged = list(self.new) + list(self.baselined)
        merged.sort(key=lambda finding: finding.sort_key())
        return merged


class GraphAnalyzer:
    def __init__(
        self,
        root: Path,
        config: Optional[GraphConfig] = None,
        baseline: Optional[Baseline] = None,
    ) -> None:
        self.root = Path(root)
        self.config = config or DEFAULT_CONFIG
        self.baseline = baseline or Baseline({})

    def run(self) -> GraphResult:
        project = Project.load(self.root)
        symbols = Symbols(project)
        resolver = Resolver(symbols, self.config)
        lock_report = LockAnalysis(symbols, resolver, self.config).run()
        findings = self._collect(project, symbols, lock_report)
        findings.sort(key=lambda finding: finding.sort_key())
        new: List[GraphFinding] = []
        baselined: List[GraphFinding] = []
        suppressed: List[GraphFinding] = []
        for finding in findings:
            if self._suppressed(project, finding):
                suppressed.append(finding)
            elif self.baseline.matches(finding):
                baselined.append(finding)
            else:
                new.append(finding)
        stats = self._stats(project, symbols, lock_report, findings)
        return GraphResult(project, lock_report, new, baselined, suppressed, stats)

    # -- finding construction ------------------------------------------------

    def _collect(self, project, symbols, lock_report: LockReport) -> List[GraphFinding]:
        findings: List[GraphFinding] = []
        findings.extend(self._cycle_findings(project, symbols, lock_report))
        findings.extend(self._hazard_findings(project, symbols, lock_report))
        findings.extend(self._layer_findings(project))
        findings.extend(self._contract_findings(project, symbols, lock_report))
        return findings

    def _function_location(self, symbols, qname: str) -> Tuple[str, Path, int]:
        info = symbols.functions.get(qname)
        if info is None:
            return ("", Path("."), 0)
        return (
            symbols.project.relpath(info.module.path),
            info.module.path,
            getattr(info.node, "lineno", 0),
        )

    def _render_chain(self, chain) -> str:
        return " -> ".join(f"{func}:{line}" for func, line in chain)

    def _cycle_findings(self, project, symbols, lock_report: LockReport):
        for cycle in lock_report.cycles:
            subject = " -> ".join(cycle.locks + [cycle.locks[0]])
            anchor_func, anchor_line = cycle.edges[0].chain[-1]
            relpath, _path, _defline = self._function_location(symbols, anchor_func)
            detail = []
            for edge in cycle.edges:
                detail.append(
                    f"{edge.src.name} -> {edge.dst.name}"
                    f" via {self._render_chain(edge.chain)}"
                )
            yield GraphFinding(
                "WPLG01",
                relpath,
                anchor_line,
                anchor_func,
                subject,
                f"potential deadlock: lock-order cycle {subject}",
                detail,
            )

    def _hazard_findings(self, project, symbols, lock_report: LockReport):
        for hazard in lock_report.hazards:
            relpath, _path, _defline = self._function_location(symbols, hazard.func)
            locks = ", ".join(lock.name for lock in hazard.locks)
            detail = [f"lock-holding path: {self._render_chain(hazard.chain)}"]
            yield GraphFinding(
                "WPLG02",
                relpath,
                hazard.line,
                hazard.func,
                hazard.description,
                f"{hazard.description} while holding {locks}",
                detail,
            )

    def _layer_findings(self, project):
        for violation in check_layers(project, self.config):
            edge = violation.edge
            module = project.modules.get(edge.src)
            relpath = project.relpath(module.path) if module else edge.src
            deferred = " (deferred import)" if edge.deferred else ""
            yield GraphFinding(
                "WPLG03",
                relpath,
                edge.line,
                edge.src,
                edge.dst,
                f"layering violation: {edge.src} [{violation.src_layer}] "
                f"imports {edge.dst} [{violation.dst_layer}]{deferred}",
            )

    def _contract_findings(self, project, symbols, lock_report: LockReport):
        """Machine-check the configured required lock orders (WPLG04).

        A contract only applies when the module defining each lock exists
        in the analyzed tree — analyzing a fixture or subtree must not
        trip contracts about code that is not there.  Deleting the lock
        *class* while keeping the module still reports "contract stale".
        """
        for order in self.config.required_lock_orders:
            before, after = order["before"], order["after"]
            reason = order.get("reason", "")
            modules = (before.rsplit(".", 2)[0], after.rsplit(".", 2)[0])
            if any(dotted not in project.modules for dotted in modules):
                continue
            if lock_report.has_path(after, before):
                detail = []
                for (src, dst), edge in sorted(lock_report.edges.items()):
                    if src == after or dst == before:
                        detail.append(
                            f"{src} -> {dst} via {self._render_chain(edge.chain)}"
                        )
                yield GraphFinding(
                    "WPLG04",
                    "<lock-order-contract>",
                    0,
                    "contract",
                    f"{after} !-> {before}",
                    f"contract violated: required order {before} -> {after} "
                    f"({reason}) but a reverse path {after} -> {before} exists",
                    detail,
                )
            elif not lock_report.has_edge(before, after):
                yield GraphFinding(
                    "WPLG04",
                    "<lock-order-contract>",
                    0,
                    "contract",
                    f"{before} -> {after} missing",
                    f"contract stale: required order {before} -> {after} "
                    f"({reason}) no longer appears in the lock-order graph",
                )

    # -- filtering -----------------------------------------------------------

    def _suppressed(self, project, finding: GraphFinding) -> bool:
        module = None
        scope = finding.scope
        # The scope is a function/module qname; find its module.
        candidate = scope
        while candidate and module is None:
            module = project.modules.get(candidate)
            candidate = candidate.rpartition(".")[0]
        if module is None:
            return False
        return module.suppressed(finding.line, finding.code)

    # -- stats ---------------------------------------------------------------

    def _stats(self, project, symbols, lock_report: LockReport, findings) -> Dict[str, int]:
        import_edges = list(project.import_edges())
        locks = set(lock_report.lock_names)
        for (src, dst) in lock_report.edges:
            locks.add(src)
            locks.add(dst)
        blocking_ops = sum(
            len(summary.blocking) for summary in lock_report.summaries.values()
        )
        return {
            "modules": len(project.modules),
            "classes": len(symbols.classes),
            "functions": len(symbols.functions),
            "import_edges": len(import_edges),
            "call_edges": lock_report.call_edge_count,
            "locks": len(locks),
            "lock_order_edges": len(lock_report.edges),
            "lock_order_cycles": len(lock_report.cycles),
            "blocking_ops_seen": blocking_ops,
            "findings": len(findings),
        }
