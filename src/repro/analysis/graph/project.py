"""Project loading for the whole-program analyzer.

A :class:`Project` is the parsed view of one Python package tree: every
module's AST, its dotted module name, its intraproject import edges, and
its ``# wpl: noqa`` suppression map (shared with the lint engine, so the
suppression syntax is identical across both analyzers).

Module naming is rooted at the *package directory* handed to
:meth:`Project.load` — scanning ``src/repro`` yields modules named
``repro``, ``repro.core.queues``, ...; scanning a fixture tree
``tests/fixtures/graph/lock_cycle/repro`` yields the same shape of names,
which is what lets the violation fixtures exercise the layer contract
without living inside the real package.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.analysis.lint.engine import _collect_noqa


class ImportEdge:
    """One intraproject import: ``src`` imports ``dst``.

    ``typecheck_only`` marks imports inside ``if TYPE_CHECKING:`` blocks —
    they do not exist at runtime, so the layering contract ignores them.
    ``deferred`` marks function-level imports (a runtime edge, but one
    that was usually placed there deliberately to break an import cycle —
    the report says so).
    """

    __slots__ = ("src", "dst", "line", "col", "typecheck_only", "deferred")

    def __init__(
        self,
        src: str,
        dst: str,
        line: int,
        col: int,
        typecheck_only: bool,
        deferred: bool,
    ) -> None:
        self.src = src
        self.dst = dst
        self.line = line
        self.col = col
        self.typecheck_only = typecheck_only
        self.deferred = deferred

    def __repr__(self) -> str:
        flags = []
        if self.typecheck_only:
            flags.append("typecheck")
        if self.deferred:
            flags.append("deferred")
        suffix = f" [{','.join(flags)}]" if flags else ""
        return f"ImportEdge({self.src} -> {self.dst}{suffix})"


class SourceModule:
    """One parsed module: AST, names, suppressions, import edges."""

    def __init__(self, name: str, path: Path, tree: ast.Module, text: str) -> None:
        self.name = name
        self.path = path
        self.tree = tree
        self.text = text
        #: line -> suppressed codes (``None`` = all), lint-engine syntax.
        self.noqa = _collect_noqa(text)
        self.imports: List[ImportEdge] = []
        #: ``name in this module -> fully dotted target`` (module, class,
        #: or function qname) built from import statements.
        self.bindings: Dict[str, str] = {}
        #: Local aliases of the ``threading`` module (usually {"threading"}).
        self.threading_aliases: Set[str] = set()
        #: ``from threading import Lock as L`` -> {"L": "Lock"}.
        self.threading_names: Dict[str, str] = {}
        #: Non-project ``import X [as Y]`` aliases -> dotted module (os,
        #: time, queue, ...) — the blocking-call catalog keys off these.
        self.ext_modules: Dict[str, str] = {}

    @property
    def package(self) -> str:
        """The dotted package this module lives in (for relative imports)."""
        if self.path.name == "__init__.py":
            return self.name
        return self.name.rpartition(".")[0]

    def suppressed(self, line: int, code: str) -> bool:
        """Is ``code`` silenced on ``line`` by a ``# wpl: noqa`` comment?"""
        if line not in self.noqa:
            return False
        codes = self.noqa[line]
        return codes is None or code.upper() in codes

    def __repr__(self) -> str:
        return f"SourceModule({self.name})"


def _module_name(root: Path, path: Path, root_name: str) -> str:
    rel = path.relative_to(root)
    parts = list(rel.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join([root_name] + parts)


class Project:
    """All modules of one package tree plus the project import graph."""

    def __init__(self, root: Path, root_name: str) -> None:
        self.root = root
        self.root_name = root_name
        self.modules: Dict[str, SourceModule] = {}
        #: Modules that failed to parse: path -> error message.
        self.parse_errors: Dict[Path, str] = {}

    @classmethod
    def load(cls, root: Path, root_name: Optional[str] = None) -> "Project":
        """Parse every ``*.py`` under ``root`` (a package directory)."""
        root = Path(root).resolve()
        project = cls(root, root_name or root.name)
        for path in sorted(root.rglob("*.py")):
            text = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(text, filename=str(path))
            except SyntaxError as exc:
                project.parse_errors[path] = exc.msg or "syntax error"
                continue
            name = _module_name(root, path, project.root_name)
            module = SourceModule(name, path, tree, text)
            _collect_imports(module, project.root_name)
            project.modules[name] = module
        return project

    # -- lookups -------------------------------------------------------------

    def module_for(self, dotted: str) -> Optional[SourceModule]:
        """The project module named ``dotted``, or its package, or None."""
        while dotted:
            module = self.modules.get(dotted)
            if module is not None:
                return module
            dotted = dotted.rpartition(".")[0]
        return None

    def owns(self, dotted: str) -> bool:
        """Is ``dotted`` inside this project's package?"""
        return dotted == self.root_name or dotted.startswith(self.root_name + ".")

    def import_edges(self) -> Iterator[ImportEdge]:
        for name in sorted(self.modules):
            for edge in self.modules[name].imports:
                yield edge

    def relpath(self, path: Path) -> str:
        """``path`` relative to the package root's parent — the stable,
        checkout-independent path used in fingerprints and reports."""
        try:
            return str(
                Path(self.root.name) / path.resolve().relative_to(self.root)
            )
        except ValueError:
            return str(path)

    def __repr__(self) -> str:
        return f"Project({self.root_name}, modules={len(self.modules)})"


def _is_typecheck_test(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "TYPE_CHECKING"
    return isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING"


def _collect_imports(module: SourceModule, root_name: str) -> None:
    """Record intraproject import edges and the module's name bindings."""

    def resolve_from(node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: walk up from the module's own package.
        base = module.package.split(".")
        hops = node.level - 1
        if hops >= len(base):
            return None
        anchor = base[: len(base) - hops]
        if node.module:
            anchor.append(node.module)
        return ".".join(anchor)

    def walk(stmts: Sequence[ast.stmt], typecheck: bool, deferred: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    if alias.name == "threading":
                        module.threading_aliases.add(alias.asname or alias.name)
                    if alias.name == root_name or alias.name.startswith(
                        root_name + "."
                    ):
                        module.imports.append(
                            ImportEdge(
                                module.name,
                                alias.name,
                                stmt.lineno,
                                stmt.col_offset,
                                typecheck,
                                deferred,
                            )
                        )
                        if not deferred:
                            bound = alias.asname or alias.name.split(".")[0]
                            target = alias.name if alias.asname else alias.name.split(".")[0]
                            module.bindings[bound] = target
                    else:
                        module.ext_modules[alias.asname or alias.name.split(".")[0]] = (
                            alias.name
                        )
            elif isinstance(stmt, ast.ImportFrom):
                target = resolve_from(stmt)
                if target is not None and (
                    target == root_name or target.startswith(root_name + ".")
                ):
                    module.imports.append(
                        ImportEdge(
                            module.name,
                            target,
                            stmt.lineno,
                            stmt.col_offset,
                            typecheck,
                            deferred,
                        )
                    )
                    if not deferred:
                        for alias in stmt.names:
                            if alias.name == "*":
                                continue
                            module.bindings[alias.asname or alias.name] = (
                                f"{target}.{alias.name}"
                            )
                elif target == "threading":
                    # ``from threading import Lock [as L]`` — record the
                    # local names so lock classification can resolve bare
                    # ``Lock()`` / ``Condition()`` constructor calls.
                    for alias in stmt.names:
                        if alias.name != "*":
                            module.threading_names[alias.asname or alias.name] = (
                                alias.name
                            )
            elif isinstance(stmt, ast.If):
                branch_typecheck = typecheck or _is_typecheck_test(stmt.test)
                walk(stmt.body, branch_typecheck, deferred)
                walk(stmt.orelse, typecheck, deferred)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk(stmt.body, typecheck, True)
            elif isinstance(stmt, ast.ClassDef):
                walk(stmt.body, typecheck, deferred)
            else:
                for field in ("body", "orelse", "finalbody"):
                    block = getattr(stmt, field, None)
                    if block:
                        walk(block, typecheck, deferred)
                for handler in getattr(stmt, "handlers", []) or []:
                    walk(handler.body, typecheck, deferred)

    walk(module.tree.body, False, False)
