"""Findings, baseline mechanism, and output formats for the graph
analyzer.

Finding codes:

- ``WPLG01`` — lock-order cycle (potential deadlock), with the witness
  call chain of every edge in the cycle;
- ``WPLG02`` — blocking call reached while a lock is held, with the
  lock-holding call chain;
- ``WPLG03`` — layering violation (upward runtime import);
- ``WPLG04`` — lock-order contract violation (a configured required
  order is reversed, or the guarded edge vanished and the config went
  stale).

Baselines are line-number independent: a fingerprint is
``code|path|scope|subject`` so a finding survives unrelated edits to its
file, while a *new* cycle or hazard — different locks, different
function — misses the baseline and fails the gate.  The baseline file is
JSON with sorted keys and a trailing newline, so regenerating it on an
unchanged tree is byte-for-byte stable; ``justification`` text is
preserved across regenerations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

CODES = {
    "WPLG01": "lock-order cycle (potential deadlock)",
    "WPLG02": "blocking call under lock",
    "WPLG03": "layering violation (upward import)",
    "WPLG04": "lock-order contract violation",
}


class GraphFinding:
    __slots__ = ("code", "path", "line", "scope", "subject", "message", "detail")

    def __init__(
        self,
        code: str,
        path: str,
        line: int,
        scope: str,
        subject: str,
        message: str,
        detail: Sequence[str] = (),
    ) -> None:
        self.code = code
        self.path = path
        self.line = line
        self.scope = scope
        self.subject = subject
        self.message = message
        self.detail = list(detail)

    @property
    def fingerprint(self) -> str:
        return f"{self.code}|{self.path}|{self.scope}|{self.subject}"

    def sort_key(self):
        return (self.path, self.line, self.code, self.subject)

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "scope": self.scope,
            "subject": self.subject,
            "message": self.message,
            "detail": list(self.detail),
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        lines = [f"{self.path}:{self.line}: {self.code} {self.message}"]
        for entry in self.detail:
            lines.append(f"    {entry}")
        return "\n".join(lines)


class Baseline:
    """Checked-in accepted findings, keyed by fingerprint."""

    def __init__(self, entries: Dict[str, Dict[str, str]]) -> None:
        self.entries = entries

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls({})
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = {
            entry["fingerprint"]: entry for entry in payload.get("findings", [])
        }
        return cls(entries)

    def matches(self, finding: GraphFinding) -> bool:
        return finding.fingerprint in self.entries

    @staticmethod
    def serialize(
        findings: Sequence[GraphFinding],
        previous: Optional["Baseline"] = None,
    ) -> str:
        """The baseline file content for ``findings`` — deterministic,
        sorted by fingerprint, justifications carried over."""
        entries = []
        seen = set()
        for finding in findings:
            if finding.fingerprint in seen:
                continue
            seen.add(finding.fingerprint)
            justification = "TODO: justify or fix"
            if previous is not None and finding.fingerprint in previous.entries:
                justification = previous.entries[finding.fingerprint].get(
                    "justification", justification
                )
            entries.append(
                {
                    "fingerprint": finding.fingerprint,
                    "code": finding.code,
                    "message": finding.message,
                    "justification": justification,
                }
            )
        entries.sort(key=lambda entry: entry["fingerprint"])
        payload = {"version": 1, "findings": entries}
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def to_sarif(
    new: Sequence[GraphFinding],
    baselined: Sequence[GraphFinding] = (),
) -> Dict[str, object]:
    """Minimal SARIF 2.1.0 document for CI artifact upload.

    New findings are ``error``; baselined ones are included as ``note``
    so the artifact shows the whole accepted-debt picture."""
    rules = [
        {
            "id": code,
            "shortDescription": {"text": description},
        }
        for code, description in sorted(CODES.items())
    ]
    results = []
    for finding, level in [(f, "error") for f in new] + [
        (f, "note") for f in baselined
    ]:
        results.append(
            {
                "ruleId": finding.code,
                "level": level,
                "message": {
                    "text": finding.message
                    + ("\n" + "\n".join(finding.detail) if finding.detail else "")
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {"startLine": max(finding.line, 1)},
                        }
                    }
                ],
                "partialFingerprints": {"wplGraph/v1": finding.fingerprint},
            }
        )
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis-graph",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def format_stats(stats: Dict[str, int]) -> str:
    width = max(len(key) for key in stats)
    lines = ["graph analyzer stats:"]
    for key in sorted(stats):
        lines.append(f"  {key.ljust(width)}  {stats[key]}")
    return "\n".join(lines)


def format_human(
    new: Sequence[GraphFinding],
    baselined: Sequence[GraphFinding],
    suppressed_count: int,
) -> str:
    lines: List[str] = []
    for finding in new:
        lines.append(finding.render())
    summary = (
        f"graph: {len(new)} finding{'s' if len(new) != 1 else ''}"
        f" ({len(baselined)} baselined, {suppressed_count} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines)
