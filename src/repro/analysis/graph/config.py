"""Declarative configuration for the whole-program graph analyzer.

Everything the analyzer *asserts about this repo specifically* lives
here, in data, so the machinery in the sibling modules stays generic:

- :data:`LAYER_CONTRACT` — the layer DAG the import graph must respect
  (see ``docs/architecture.md`` for the diagram this encodes);
- :data:`REQUIRED_LOCK_ORDERS` — cross-class lock orders that until this
  PR existed only as comments (e.g. the breaker → metrics-stripe order
  documented in ``service/breaker.py``), now machine-checked against the
  computed lock-order graph;
- :data:`CALLBACK_BINDINGS` — callable attributes the call-graph builder
  cannot resolve statically (listener/sink indirection), bound here to
  their known implementations so lock contexts propagate through them;
- :data:`RETURN_TYPES` — return-type overrides for the few methods whose
  annotations are too generic to resolve (``MetricFamily.labels`` returns
  a type variable; for lock purposes it can be any instrument child);
- :data:`BLOCKING_CALLS` — the catalog of calls that block unboundedly
  and are therefore hazards while any lock is held.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Layer contract, bottom (most fundamental) to top.  A module in layer N
#: may import layers <= N at runtime; importing a *higher* layer is a
#: WPLG03 layering violation.  Entries are package-relative prefixes:
#: ``core`` covers ``repro.core`` and everything under it; bare module
#: names (``errors``, ``cli``) cover that single module.
LAYER_CONTRACT: Sequence[Tuple[str, Sequence[str]]] = (
    ("foundation", ("errors",)),
    # The clock seam sits below everything timed: ``sim.clock`` imports
    # only the stdlib, and core/faults/simulate/cluster all route their
    # sleeps and deadline reads through it (as ``import repro.sim.clock``
    # so the edge targets this prefix, not the package).  Entries match
    # in contract order (see ``layers.py``), so this one must precede
    # the broad ``sim`` entry — the harness side of ``sim``, which
    # drives engines and clusters, lands in the *high* layer below
    # ``bench``.
    ("clock", ("sim.clock",)),
    ("storage", ("xmldb",)),
    ("corpus", ("xmark", "biblio")),
    ("query", ("query",)),
    ("scoring", ("scoring",)),
    ("relax", ("relax",)),
    ("core", ("core",)),
    ("simulate", ("simulate",)),
    ("faults", ("faults",)),
    ("obs", ("obs",)),
    ("recovery", ("recovery",)),
    ("service", ("service",)),
    ("cluster", ("cluster",)),
    ("sim", ("sim",)),
    ("bench", ("bench",)),
    ("top", ("cli", "analysis", "__main__", "")),
)

#: Cross-class lock orders the code comments promise; the analyzer fails
#: if the computed lock-order graph contains a path in the *reverse*
#: direction (WPLG04), and also fails if the forward edge disappears —
#: a vanished edge means the config went stale and stopped guarding
#: anything.  Names are lock identities: ``<module>.<Class>._<attr>``.
REQUIRED_LOCK_ORDERS: Sequence[Dict[str, str]] = (
    {
        # service/breaker.py documents: the breaker's transition listener
        # runs under the breaker lock and may only touch metric stripe
        # locks — the only sanctioned cross-lock order is breaker → stripe.
        "before": "repro.service.breaker.CircuitBreaker._lock",
        "after": "repro.obs.metrics.Counter._lock",
        "reason": "breaker listener records metrics under the breaker lock",
    },
    {
        # Same contract for the gauge side of the listener
        # (whirlpool_breaker_state) — still breaker → stripe, never back.
        "before": "repro.service.breaker.CircuitBreaker._lock",
        "after": "repro.obs.metrics.Gauge._lock",
        "reason": "breaker listener sets the state gauge under the breaker lock",
    },
)

#: Callable attributes → implementations they are known to invoke.  The
#: call-graph builder adds these edges so lock contexts flow through
#: listener/sink indirection the AST cannot resolve.
CALLBACK_BINDINGS: Dict[str, Sequence[str]] = {
    # CircuitBreaker fires its transition listener while holding the
    # breaker lock; the service installs _on_breaker_transition there.
    "repro.service.breaker.CircuitBreaker._listener": (
        "repro.service.service.WhirlpoolService._on_breaker_transition",
    ),
}

#: Return-type overrides (function qname → candidate class qnames) for
#: methods whose annotations are generic.  ``MetricFamily.labels``
#: returns ``_C`` — any instrument child; all three matter for lock
#: propagation because children share the registry's stripe locks.
RETURN_TYPES: Dict[str, Sequence[str]] = {
    "repro.obs.metrics.MetricFamily.labels": (
        "repro.obs.metrics.Counter",
        "repro.obs.metrics.Gauge",
        "repro.obs.metrics.Histogram",
    ),
}

#: Method names that block unboundedly when called *without* a timeout
#: argument (positional or keyword).  ``wait`` on the lock you are
#: waiting's own condition is the sanctioned pattern and is exempted by
#: the analyzer; ``wait`` on anything else while holding a lock is not.
BLOCKING_METHODS_TIMEOUT: Dict[str, str] = {
    "get": "queue get() without timeout",
    "put": "queue put() without timeout",
    "join": "join() without timeout",
    "wait": "wait() without timeout",
    "wait_zero": "in-flight wait_zero() without timeout",
    "acquire": "blocking acquire()",
}

#: Method/function names that block (or can run unboundedly) regardless
#: of arguments — reaching one of these while a lock is held is always a
#: latency/deadlock hazard worth a finding.
BLOCKING_CALLS_ALWAYS: Dict[str, str] = {
    "sleep": "time.sleep under a lock",
    "run": "engine run() under a lock",
    "connect": "socket connect under a lock",
    "recv": "socket recv under a lock",
    "send": "socket send under a lock",
    "sendall": "socket sendall under a lock",
    "accept": "socket accept under a lock",
    "read": "file/socket read under a lock",
    "write": "file/socket write under a lock",
    "replace": "os.replace (filesystem) under a lock",
    "remove": "os.remove (filesystem) under a lock",
    "listdir": "os.listdir (filesystem) under a lock",
    "makedirs": "os.makedirs (filesystem) under a lock",
}

#: ``open``-style builtins treated as file I/O when called under a lock.
BLOCKING_BUILTINS: Dict[str, str] = {
    "open": "open() (file I/O) under a lock",
}

#: Receiver names whose ``run()`` is engine execution (the only ``run``
#: the hazard catalog means); a bare ``anything.run()`` would be far too
#: noisy, so the ``run`` entry in :data:`BLOCKING_CALLS_ALWAYS` only
#: fires when the receiver's inferred class is one of these.
ENGINE_RUN_CLASSES: Sequence[str] = (
    "repro.core.base.EngineBase",
    "repro.core.whirlpool_m.WhirlpoolM",
    "repro.core.whirlpool_s.WhirlpoolS",
    "repro.core.lockstep.LockStep",
    "repro.core.engine.Engine",
)

#: ``read``/``write`` are common method names; only flag them when the
#: receiver is a file-handle-ish local (from ``open(...)``) or unknown
#: receivers whose name suggests a handle.  Receiver *classes* in this
#: set are exempt even for catalog names (e.g. ``MatchQueue.put`` under
#: no lock is fine; under a lock the timeout rule still applies).
IO_RECEIVER_HINTS: Sequence[str] = ("handle", "file", "fh", "sock", "socket", "conn")


class GraphConfig:
    """Bundled configuration with override points for tests/fixtures."""

    def __init__(
        self,
        layer_contract: Sequence[Tuple[str, Sequence[str]]] = LAYER_CONTRACT,
        required_lock_orders: Sequence[Dict[str, str]] = REQUIRED_LOCK_ORDERS,
        callback_bindings: Dict[str, Sequence[str]] = CALLBACK_BINDINGS,
        return_types: Dict[str, Sequence[str]] = RETURN_TYPES,
    ) -> None:
        self.layer_contract = tuple((name, tuple(p)) for name, p in layer_contract)
        self.required_lock_orders = tuple(dict(d) for d in required_lock_orders)
        self.callback_bindings = {
            key: tuple(targets) for key, targets in callback_bindings.items()
        }
        self.return_types = {
            key: tuple(targets) for key, targets in return_types.items()
        }

    def layer_names(self) -> List[str]:
        return [name for name, _prefixes in self.layer_contract]


DEFAULT_CONFIG = GraphConfig()
