"""Import-layer contract enforcement.

The contract is an ordered list of layers (see
:data:`repro.analysis.graph.config.LAYER_CONTRACT`); a module may import
its own layer or anything *below* it.  A runtime import of a higher
layer is a WPLG03 layering violation.  ``if TYPE_CHECKING:`` imports are
exempt (they do not exist at runtime); function-level imports are
runtime edges and are checked, but the finding notes they are deferred
so the reader knows a cycle-breaking intent when they see one.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.graph.config import GraphConfig
from repro.analysis.graph.project import ImportEdge, Project


class LayerViolation:
    __slots__ = ("edge", "src_layer", "dst_layer")

    def __init__(self, edge: ImportEdge, src_layer: str, dst_layer: str) -> None:
        self.edge = edge
        self.src_layer = src_layer
        self.dst_layer = dst_layer


def layer_of(project: Project, module: str, config: GraphConfig) -> Optional[Tuple[int, str]]:
    """``(index, name)`` of the layer owning ``module``, or None."""
    if not project.owns(module):
        return None
    rel = module[len(project.root_name) :].lstrip(".")
    for index, (name, prefixes) in enumerate(config.layer_contract):
        for prefix in prefixes:
            if prefix == "":
                if rel == "":
                    return (index, name)
            elif rel == prefix or rel.startswith(prefix + "."):
                return (index, name)
    return None


def check_layers(project: Project, config: GraphConfig) -> List[LayerViolation]:
    violations: List[LayerViolation] = []
    for edge in project.import_edges():
        if edge.typecheck_only:
            continue
        src = layer_of(project, edge.src, config)
        dst = layer_of(project, edge.dst, config)
        if src is None or dst is None:
            continue
        if dst[0] > src[0]:
            violations.append(LayerViolation(edge, src[1], dst[1]))
    return violations
