"""Concurrency-safety analysis for the Whirlpool reproduction.

Whirlpool-M's correctness rests on a handful of mechanical disciplines —
every write to the shared top-k set / statistics / trace / queues happens
under that object's lock, threads are named daemons that the engine joins,
engine subclasses honour the :class:`~repro.core.base.EngineBase`
contract — and this package *verifies* them instead of trusting review:

- :mod:`repro.analysis.lint` — a custom AST rule engine with repo-specific
  rules (codes ``WPL001``–``WPL006``), line-level ``# wpl: noqa=CODE``
  suppressions, and human/JSON output;
- :mod:`repro.analysis.racecheck` — a runtime lock-coverage (lockset)
  race detector that instruments ``threading`` locks and the shared
  classes during a real Whirlpool-M run;
- ``python -m repro.analysis`` — the CI entry point: lints the source
  tree, runs a racecheck smoke over a generated biblio document, and
  exits non-zero on any finding.

See ``docs/static_analysis.md`` for the rule catalog.
"""

from repro.analysis.lint import (
    Finding,
    LintEngine,
    default_rules,
    format_human,
    format_json,
    lint_paths,
)
from repro.analysis.racecheck import RaceCheck, RaceFinding

__all__ = [
    "Finding",
    "LintEngine",
    "default_rules",
    "format_human",
    "format_json",
    "lint_paths",
    "RaceCheck",
    "RaceFinding",
]
