"""``python -m repro.analysis`` — the repo's concurrency-safety gate.

Runs three phases and exits non-zero if any finds anything:

1. **lint** — the ``WPL`` rules over ``src/repro`` plus the repo's
   ``benchmarks/`` directory when present (or over explicit paths);
2. **graph** — the whole-program analyzer (lock-order cycles, blocking
   calls under locks, layering contract) over the installed package,
   checked against the shipped baseline;
3. **racecheck smoke** — a real Whirlpool-M run (``threads_per_server=2``)
   over a small generated biblio catalog under the lockset detector.

Options::

    python -m repro.analysis [paths...] [--json] [--skip-racecheck]
                             [--skip-lint] [--skip-graph]

With explicit ``paths`` only those files/directories are linted (used by
the violation-fixture tests); the graph and racecheck phases always run
on the installed package and are unaffected by paths.

The graph analyzer is also a standalone subcommand::

    python -m repro.analysis graph [root] [--json] [--sarif PATH]
                                   [--baseline PATH | --no-baseline]
                                   [--write-baseline] [--stats]

``graph`` exits 0 when every finding is baselined or suppressed, 1 on
new findings, 2 on usage errors.  ``--write-baseline`` regenerates the
baseline file (preserving existing justifications) and exits 0.
"""

from __future__ import annotations

import argparse
import json as _json
import sys
from pathlib import Path
from typing import List, Optional

import repro
from repro.analysis.lint import Finding, format_human, lint_paths
from repro.analysis.racecheck import RaceCheck, RaceFinding


def default_lint_paths() -> List[Path]:
    """``src/repro`` (via the installed package) + sibling ``benchmarks/``."""
    package_root = Path(repro.__file__).resolve().parent
    paths = [package_root]
    repo_root = package_root.parent.parent
    benchmarks = repo_root / "benchmarks"
    if benchmarks.is_dir():
        paths.append(benchmarks)
    return paths


def default_graph_root() -> Path:
    return Path(repro.__file__).resolve().parent


def default_baseline_path() -> Path:
    return Path(__file__).resolve().parent / "graph" / "baseline.json"


def run_racecheck_smoke(threads_per_server: int = 2) -> List[RaceFinding]:
    """One Whirlpool-M run over a generated biblio doc under the detector."""
    from repro.biblio import BiblioConfig, generate_catalogs, reference_query
    from repro.core.engine import Engine
    from repro.core.whirlpool_m import WhirlpoolM

    database = generate_catalogs(BiblioConfig(books_per_seller=6, seed=3))
    engine = Engine(database, reference_query())
    with RaceCheck() as check:
        runner = WhirlpoolM(
            pattern=engine.pattern,
            index=engine.index,
            score_model=engine.score_model,
            k=5,
            threads_per_server=threads_per_server,
        )
        runner.run()
    return check.findings()


def graph_main(argv: List[str]) -> int:
    """The ``graph`` subcommand."""
    from repro.analysis.graph import Baseline, GraphAnalyzer, to_sarif
    from repro.analysis.graph.report import format_human as graph_human
    from repro.analysis.graph.report import format_stats

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis graph",
        description="Whole-program lock-order / blocking / layering analysis.",
    )
    parser.add_argument(
        "root",
        nargs="?",
        type=Path,
        default=None,
        help="package directory to analyze (default: the installed repro package)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--sarif", type=Path, default=None, help="write a SARIF 2.1.0 report here"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: the shipped baseline when analyzing "
        "the installed package, none otherwise)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline — report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from this run (keeps justifications)",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print graph sizes after the run"
    )
    args = parser.parse_args(argv)

    default_root = args.root is None
    root = default_graph_root() if default_root else args.root
    if not root.is_dir():
        print(f"error: no such path: {root}", file=sys.stderr)
        return 2

    baseline_path = args.baseline
    if baseline_path is None and default_root:
        baseline_path = default_baseline_path()
    baseline = Baseline({})
    if baseline_path is not None and not args.no_baseline:
        baseline = Baseline.load(baseline_path)

    result = GraphAnalyzer(root, baseline=baseline).run()

    for path, message in sorted(result.project.parse_errors.items()):
        print(f"error: {path}: {message}", file=sys.stderr)

    if args.write_baseline:
        if baseline_path is None:
            print(
                "error: --write-baseline needs --baseline with an explicit root",
                file=sys.stderr,
            )
            return 2
        previous = Baseline.load(baseline_path)
        baseline_path.write_text(
            Baseline.serialize(result.all_findings, previous), encoding="utf-8"
        )
        print(f"baseline written: {baseline_path} ({len(result.all_findings)} findings)")
        return 0

    if args.sarif is not None:
        args.sarif.parent.mkdir(parents=True, exist_ok=True)
        args.sarif.write_text(
            _json.dumps(to_sarif(result.new, result.baselined), indent=2) + "\n",
            encoding="utf-8",
        )

    if args.json:
        payload = {
            "count": len(result.new),
            "findings": [finding.to_dict() for finding in result.new],
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "stats": result.stats,
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(graph_human(result.new, result.baselined, len(result.suppressed)))
        if args.stats:
            print(format_stats(result.stats))

    return 1 if result.new else 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "graph":
        return graph_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Whirlpool concurrency-safety analysis (lint + graph + racecheck).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to lint (default: src/repro + benchmarks/)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--skip-lint", action="store_true", help="skip the AST lint phase"
    )
    parser.add_argument(
        "--skip-graph",
        action="store_true",
        help="skip the whole-program graph analysis phase",
    )
    parser.add_argument(
        "--skip-racecheck",
        action="store_true",
        help="skip the Whirlpool-M racecheck smoke run",
    )
    args = parser.parse_args(argv)

    failed = False

    lint_findings: List[Finding] = []
    graph_new = []
    graph_summary = ""
    if not args.skip_lint:
        targets = [Path(p) for p in args.paths] if args.paths else default_lint_paths()
        missing = [str(p) for p in targets if not p.exists()]
        if missing:
            print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
            return 2
        lint_findings = lint_paths(targets)
        failed = failed or bool(lint_findings)

    if not args.skip_graph:
        from repro.analysis.graph import Baseline, GraphAnalyzer
        from repro.analysis.graph.report import format_human as graph_human

        baseline = Baseline.load(default_baseline_path())
        result = GraphAnalyzer(default_graph_root(), baseline=baseline).run()
        graph_new = result.new
        graph_summary = graph_human(
            result.new, result.baselined, len(result.suppressed)
        )
        failed = failed or bool(graph_new)

    if args.json:
        findings = [finding.as_dict() for finding in lint_findings]
        findings += [finding.to_dict() for finding in graph_new]
        print(_json.dumps({"count": len(findings), "findings": findings}))
    else:
        if not args.skip_lint:
            print(format_human(lint_findings))
        if graph_summary:
            print(graph_summary)

    if not args.skip_racecheck:
        race_findings = run_racecheck_smoke()
        if args.json:
            print(_json.dumps({"racecheck": [f.as_dict() for f in race_findings]}))
        elif race_findings:
            print(f"racecheck smoke: {len(race_findings)} finding(s)")
            for finding in race_findings:
                print(f"  [{finding.kind}] {finding.detail}")
        else:
            print("racecheck smoke: no findings")
        failed = failed or bool(race_findings)

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
