"""``python -m repro.analysis`` — the repo's concurrency-safety gate.

Runs two phases and exits non-zero if either finds anything:

1. **lint** — the ``WPL`` rules over ``src/repro`` plus the repo's
   ``benchmarks/`` directory when present (or over explicit paths);
2. **racecheck smoke** — a real Whirlpool-M run (``threads_per_server=2``)
   over a small generated biblio catalog under the lockset detector.

Options::

    python -m repro.analysis [paths...] [--json] [--skip-racecheck]
                             [--skip-lint]

With explicit ``paths`` only those files/directories are linted (used by
the violation-fixture tests); the racecheck smoke is unaffected by paths.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import repro
from repro.analysis.lint import Finding, format_human, format_json, lint_paths
from repro.analysis.racecheck import RaceCheck, RaceFinding


def default_lint_paths() -> List[Path]:
    """``src/repro`` (via the installed package) + sibling ``benchmarks/``."""
    package_root = Path(repro.__file__).resolve().parent
    paths = [package_root]
    repo_root = package_root.parent.parent
    benchmarks = repo_root / "benchmarks"
    if benchmarks.is_dir():
        paths.append(benchmarks)
    return paths


def run_racecheck_smoke(threads_per_server: int = 2) -> List[RaceFinding]:
    """One Whirlpool-M run over a generated biblio doc under the detector."""
    from repro.biblio import BiblioConfig, generate_catalogs, reference_query
    from repro.core.engine import Engine
    from repro.core.whirlpool_m import WhirlpoolM

    database = generate_catalogs(BiblioConfig(books_per_seller=6, seed=3))
    engine = Engine(database, reference_query())
    with RaceCheck() as check:
        runner = WhirlpoolM(
            pattern=engine.pattern,
            index=engine.index,
            score_model=engine.score_model,
            k=5,
            threads_per_server=threads_per_server,
        )
        runner.run()
    return check.findings()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Whirlpool concurrency-safety analysis (lint + racecheck).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to lint (default: src/repro + benchmarks/)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--skip-lint", action="store_true", help="skip the AST lint phase"
    )
    parser.add_argument(
        "--skip-racecheck",
        action="store_true",
        help="skip the Whirlpool-M racecheck smoke run",
    )
    args = parser.parse_args(argv)

    failed = False

    lint_findings: List[Finding] = []
    if not args.skip_lint:
        targets = [Path(p) for p in args.paths] if args.paths else default_lint_paths()
        missing = [str(p) for p in targets if not p.exists()]
        if missing:
            print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
            return 2
        lint_findings = lint_paths(targets)
        if args.json:
            print(format_json(lint_findings))
        else:
            print(format_human(lint_findings))
        failed = failed or bool(lint_findings)

    if not args.skip_racecheck:
        race_findings = run_racecheck_smoke()
        if args.json:
            import json

            print(json.dumps({"racecheck": [f.as_dict() for f in race_findings]}))
        elif race_findings:
            print(f"racecheck smoke: {len(race_findings)} finding(s)")
            for finding in race_findings:
                print(f"  [{finding.kind}] {finding.detail}")
        else:
            print("racecheck smoke: no findings")
        failed = failed or bool(race_findings)

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
