"""Runtime lock-coverage race detection for Whirlpool-M.

A simplified Eraser-style `lockset <https://doi.org/10.1145/265924.265927>`_
checker, specialized to this repo's shared classes.  While the context
manager is active it:

- replaces ``threading.Lock`` / ``threading.RLock`` with tracing wrappers,
  so every lock *created inside the context* records, per thread, when it
  is held (``threading.Condition`` is covered transitively: it acquires
  through the lock object it wraps, including the ``RLock`` it allocates
  by default);
- patches ``__setattr__`` on the watched classes (by default the
  Whirlpool-M shared state: :class:`~repro.core.topk.TopKSet` and its
  entries, :class:`~repro.core.stats.ExecutionStats`,
  :class:`~repro.core.trace.ExecutionTrace`,
  :class:`~repro.core.queues.MatchQueue`, and the engine's ``_InFlight``
  counter) so every field *write* records ``(thread, object, field,
  locks-held)``; writes during ``__init__`` are exempt — an object is not
  shared before construction completes.

Findings:

- **unguarded-field** — a field written by two or more distinct threads
  whose accesses share no common lock (the classic lockset violation);
- **lock-order** — a pair of locks acquired in both nesting orders by the
  observed threads (a deadlock-in-waiting even if no deadlock occurred).

Granularity caveats, documented rather than hidden: only attribute
*writes* are observed (in-place container mutation such as
``self._heap.append`` goes through the already-held queue lock here, and
the AST rule ``WPL001`` covers it statically), and only locks created
inside the context participate in locksets.  Create the engine inside the
``with`` block::

    with RaceCheck() as check:
        runner = WhirlpoolM(..., threads_per_server=2)
        runner.run()
    assert not check.findings(), check.report()
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Type

__all__ = ["RaceCheck", "RaceFinding", "default_watched_classes"]


class RaceFinding:
    """One detected violation (``unguarded-field`` or ``lock-order``)."""

    __slots__ = ("kind", "detail", "threads")

    def __init__(self, kind: str, detail: str, threads: Tuple[str, ...]) -> None:
        self.kind = kind
        self.detail = detail
        self.threads = threads

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {"kind": self.kind, "detail": self.detail, "threads": list(self.threads)}

    def __repr__(self) -> str:
        return f"RaceFinding({self.kind}: {self.detail})"


class _TracedLock:
    """Wrapper around a real lock that reports acquire/release events.

    Implements the optional ``_release_save`` / ``_acquire_restore`` /
    ``_is_owned`` trio so :class:`threading.Condition` drives the wrapper
    (and therefore the registry) instead of bypassing it.
    """

    def __init__(self, inner: Any, registry: "_Registry", kind: str) -> None:
        self._inner = inner
        self._registry = registry
        self._kind = kind

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._registry.on_acquire(self)
        return acquired

    def release(self) -> None:
        self._registry.on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return bool(self._inner.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    # -- Condition integration ---------------------------------------------------

    def _release_save(self) -> Any:
        self._registry.on_release(self)
        inner_save = getattr(self._inner, "_release_save", None)
        if inner_save is not None:
            return inner_save()
        self._inner.release()
        return None

    def _acquire_restore(self, state: Any) -> None:
        inner_restore = getattr(self._inner, "_acquire_restore", None)
        if inner_restore is not None:
            inner_restore(state)
        else:
            self._inner.acquire()
        self._registry.on_acquire(self)

    def _is_owned(self) -> bool:
        inner_owned = getattr(self._inner, "_is_owned", None)
        if inner_owned is not None:
            return bool(inner_owned())
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:
        return f"_TracedLock({self._kind}, id={id(self):#x})"


class _FieldState:
    """Lockset state for one (object, field) pair."""

    __slots__ = ("class_name", "field", "threads", "lockset", "initialized")

    def __init__(self, class_name: str, field: str) -> None:
        self.class_name = class_name
        self.field = field
        self.threads: Set[str] = set()
        #: Intersection of traced-lock id-sets across all writes so far.
        self.lockset: Optional[FrozenSet[int]] = None
        self.initialized = False


class _Registry:
    """Event sink: held-lock tracking, field states, lock-order edges."""

    def __init__(self) -> None:
        self._tls = threading.local()
        self._state_lock = threading.Lock()
        self.fields: Dict[Tuple[int, str], _FieldState] = {}
        #: (outer lock id, inner lock id) -> example thread name.
        self.order_edges: Dict[Tuple[int, int], str] = {}
        self.lock_names: Dict[int, str] = {}
        #: ids of objects currently inside a watched ``__init__``.
        self._constructing: Set[int] = set()

    # -- per-thread held stack ---------------------------------------------------

    def _held(self) -> List[int]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def on_acquire(self, lock: _TracedLock) -> None:
        held = self._held()
        lock_id = id(lock)
        if held:
            with self._state_lock:
                self.lock_names.setdefault(lock_id, repr(lock))
                for outer in set(held):
                    if outer != lock_id:
                        self.order_edges.setdefault(
                            (outer, lock_id), threading.current_thread().name
                        )
        held.append(lock_id)

    def on_release(self, lock: _TracedLock) -> None:
        held = self._held()
        lock_id = id(lock)
        # Remove the innermost occurrence (reentrant locks stack).
        for index in range(len(held) - 1, -1, -1):
            if held[index] == lock_id:
                del held[index]
                break

    # -- construction exemption ----------------------------------------------------

    def begin_construct(self, obj_id: int) -> None:
        with self._state_lock:
            self._constructing.add(obj_id)
            # A watched ``__init__`` on this id means a NEW object: any
            # recorded field states belong to a freed object whose
            # address was recycled.  Dropping them prevents cross-object
            # false positives (two sequential runs' entries landing at
            # the same address look like one object written by two
            # threads).
            stale = [key for key in self.fields if key[0] == obj_id]
            for key in stale:
                del self.fields[key]

    def end_construct(self, obj_id: int) -> None:
        with self._state_lock:
            self._constructing.discard(obj_id)

    # -- field writes ---------------------------------------------------------------

    def on_write(self, obj: object, field: str) -> None:
        obj_id = id(obj)
        lockset = frozenset(self._held())
        thread_name = threading.current_thread().name
        with self._state_lock:
            if obj_id in self._constructing:
                return
            key = (obj_id, field)
            state = self.fields.get(key)
            if state is None:
                state = self.fields[key] = _FieldState(type(obj).__name__, field)
            state.threads.add(thread_name)
            if state.lockset is None:
                state.lockset = lockset
            else:
                state.lockset = state.lockset & lockset


def default_watched_classes() -> List[type]:
    """The Whirlpool-M and observability shared-state classes (lazy imports)."""
    from repro.core.queues import MatchQueue
    from repro.core.stats import ExecutionStats
    from repro.core.topk import TopKSet, _Entry
    from repro.core.trace import ExecutionTrace
    from repro.cluster.coordinator import Coordinator, ShardHandle
    from repro.cluster.net import PipeTransport, SocketTransport
    from repro.cluster.service import ClusterBackend
    from repro.core.whirlpool_m import _InFlight
    from repro.obs.metrics import Counter, Gauge, Histogram
    from repro.obs.slowlog import SlowQueryLog
    from repro.core.server import Server
    from repro.obs.spans import Span
    from repro.recovery.store import JsonFileRecoveryStore, MemoryRecoveryStore
    from repro.sim.clock import VirtualClock
    from repro.xmldb.index import ColumnarTagIndex, ProbeCost

    return [
        TopKSet,
        _Entry,
        ExecutionStats,
        ExecutionTrace,
        MatchQueue,
        _InFlight,
        Counter,
        Gauge,
        Histogram,
        Span,
        SlowQueryLog,
        MemoryRecoveryStore,
        JsonFileRecoveryStore,
        Coordinator,
        ShardHandle,
        ClusterBackend,
        PipeTransport,
        SocketTransport,
        Server,
        ColumnarTagIndex,
        ProbeCost,
        VirtualClock,
    ]


class RaceCheck:
    """Context manager that instruments locks + watched classes and reports.

    Parameters
    ----------
    watch:
        Classes whose attribute writes are observed.  Defaults to
        :func:`default_watched_classes`; pass your own list to check other
        shared structures (the tests seed a deliberately racy class).
    """

    def __init__(self, watch: Optional[Iterable[type]] = None) -> None:
        self.registry = _Registry()
        self._watch: List[type] = (
            list(watch) if watch is not None else default_watched_classes()
        )
        self._saved_factories: Dict[str, Callable[..., Any]] = {}
        self._saved_members: List[Tuple[type, str, Optional[Any]]] = []
        self._active = False

    # -- instrumentation -----------------------------------------------------------

    def __enter__(self) -> "RaceCheck":
        if self._active:
            raise RuntimeError("RaceCheck is not reentrant")
        self._active = True
        registry = self.registry

        real_lock = threading.Lock
        real_rlock = threading.RLock
        self._saved_factories = {"Lock": real_lock, "RLock": real_rlock}

        def traced_lock() -> _TracedLock:
            return _TracedLock(real_lock(), registry, "Lock")

        def traced_rlock() -> _TracedLock:
            return _TracedLock(real_rlock(), registry, "RLock")

        threading.Lock = traced_lock  # type: ignore[misc, assignment]
        threading.RLock = traced_rlock  # type: ignore[misc, assignment]

        for cls in self._watch:
            self._patch_class(cls)
        return self

    def _patch_class(self, cls: type) -> None:
        registry = self.registry
        original_setattr = cls.__setattr__
        original_init = cls.__dict__.get("__init__")

        self._saved_members.append((cls, "__setattr__", cls.__dict__.get("__setattr__")))
        self._saved_members.append((cls, "__init__", original_init))

        def traced_setattr(obj: object, name: str, value: object) -> None:
            registry.on_write(obj, name)
            original_setattr(obj, name, value)

        cls.__setattr__ = traced_setattr  # type: ignore[method-assign, assignment]

        init_to_wrap = original_init if original_init is not None else cls.__init__

        def traced_init(obj: Any, *args: Any, **kwargs: Any) -> None:
            registry.begin_construct(id(obj))
            try:
                init_to_wrap(obj, *args, **kwargs)
            finally:
                registry.end_construct(id(obj))

        cls.__init__ = traced_init  # type: ignore[method-assign, misc]

    def __exit__(self, *exc_info: object) -> None:
        threading.Lock = self._saved_factories["Lock"]  # type: ignore[misc, assignment]
        threading.RLock = self._saved_factories["RLock"]  # type: ignore[misc, assignment]
        for cls, member, original in reversed(self._saved_members):
            if original is None:
                try:
                    delattr(cls, member)
                except AttributeError:
                    pass
            else:
                setattr(cls, member, original)
        self._saved_members = []
        self._active = False

    # -- reporting -----------------------------------------------------------------

    def findings(self) -> List[RaceFinding]:
        """All violations observed so far (callable inside or after the block)."""
        out: List[RaceFinding] = []
        with self.registry._state_lock:
            field_states = list(self.registry.fields.values())
            edges = dict(self.registry.order_edges)
        for state in field_states:
            if len(state.threads) >= 2 and not state.lockset:
                out.append(
                    RaceFinding(
                        kind="unguarded-field",
                        detail=(
                            f"{state.class_name}.{state.field} written by "
                            f"{len(state.threads)} threads with no common lock"
                        ),
                        threads=tuple(sorted(state.threads)),
                    )
                )
        reported: Set[Tuple[int, int]] = set()
        for (outer, inner), thread_name in edges.items():
            if (inner, outer) in edges and (inner, outer) not in reported:
                reported.add((outer, inner))
                out.append(
                    RaceFinding(
                        kind="lock-order",
                        detail=(
                            f"locks {outer:#x} and {inner:#x} acquired in both "
                            f"nesting orders (potential deadlock)"
                        ),
                        threads=tuple(
                            sorted({thread_name, edges[(inner, outer)]})
                        ),
                    )
                )
        out.sort(key=lambda finding: (finding.kind, finding.detail))
        return out

    def report(self) -> str:
        """Human-readable summary of the findings."""
        findings = self.findings()
        if not findings:
            return "racecheck: no findings"
        lines = [f"racecheck: {len(findings)} finding(s)"]
        for finding in findings:
            threads = ", ".join(finding.threads)
            lines.append(f"  [{finding.kind}] {finding.detail} (threads: {threads})")
        return "\n".join(lines)
