"""Custom AST lint: rule engine + the repo's ``WPL`` concurrency rules.

Quick use::

    from repro.analysis.lint import lint_paths, format_human

    findings = lint_paths(["src/repro"])
    print(format_human(findings))

Rule catalog (details in ``docs/static_analysis.md``):

========  ========================  =====================================
Code      Rule                      Invariant
========  ========================  =====================================
WPL001    shared-state-guard        shared-class writes under ``self._lock``
WPL002    no-bare-thread            threads are named daemons
WPL003    engine-contract           EngineBase subclasses stay conformant
WPL004    no-wallclock-in-core      no wall clock in ``core/`` bar stats.py
WPL005    bench-imports-public-api  benches use ``repro.core`` exports only
WPL900    syntax-error              file must parse (engine-emitted)
========  ========================  =====================================
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

from repro.analysis.lint.engine import (
    Finding,
    LintEngine,
    Module,
    Rule,
    format_human,
    format_json,
)
from repro.analysis.lint.rules import (
    BenchImportsPublicApiRule,
    EngineContractRule,
    NoBareThreadRule,
    NoWallclockInCoreRule,
    SharedStateGuardRule,
    default_rules,
)


def lint_paths(paths: Iterable[Union[str, Path]]) -> List[Finding]:
    """Lint files/directories with the default rule set."""
    return LintEngine(default_rules()).lint_paths(Path(p) for p in paths)


__all__ = [
    "Finding",
    "LintEngine",
    "Module",
    "Rule",
    "format_human",
    "format_json",
    "default_rules",
    "lint_paths",
    "SharedStateGuardRule",
    "NoBareThreadRule",
    "EngineContractRule",
    "NoWallclockInCoreRule",
    "BenchImportsPublicApiRule",
]
