"""The lint rule engine: rule registry, noqa suppressions, reporting.

A *rule* inspects one parsed module and yields :class:`Finding` objects.
The engine owns everything around that: discovering files, parsing them
once, dispatching every registered rule, and dropping findings whose line
carries a matching suppression comment.

Suppression syntax (line-level, matching the repo's ``wpl`` rule codes)::

    self._start = time.perf_counter()  # wpl: noqa=WPL001
    risky()                            # wpl: noqa=WPL001,WPL004
    anything()                         # wpl: noqa

A bare ``# wpl: noqa`` silences every rule on that line; ``=CODE[,CODE]``
silences only the listed codes.  Suppressions are deliberately line-scoped
— a file-wide opt-out would defeat the point of the guard rules.
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: ``# wpl: noqa`` / ``# wpl: noqa=WPL001,WPL002`` (codes case-insensitive).
_NOQA_RE = re.compile(
    r"#\s*wpl:\s*noqa(?:\s*=\s*(?P<codes>[A-Za-z0-9]+(?:\s*,\s*[A-Za-z0-9]+)*))?",
)


class Finding:
    """One lint violation at a specific source location."""

    __slots__ = ("code", "rule", "path", "line", "col", "message")

    def __init__(
        self, code: str, rule: str, path: Path, line: int, col: int, message: str
    ) -> None:
        self.code = code
        self.rule = rule
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "code": self.code,
            "rule": self.rule,
            "path": str(self.path),
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def __repr__(self) -> str:
        return f"Finding({self.code} {self.path}:{self.line}:{self.col})"


class Module:
    """One source file under lint: path, text, AST, suppression map."""

    def __init__(self, path: Path, text: str, tree: ast.Module) -> None:
        self.path = path
        self.text = text
        self.tree = tree
        #: line number -> suppressed codes; ``None`` means "all codes".
        self.noqa: Dict[int, Optional[Set[str]]] = _collect_noqa(text)

    @classmethod
    def parse(cls, path: Path) -> "Module":
        text = path.read_text(encoding="utf-8")
        return cls(path, text, ast.parse(text, filename=str(path)))

    # -- path roles (rules scope themselves by where the file lives) -----------

    def in_package(self, name: str) -> bool:
        """True when a path component equals ``name`` (e.g. ``core``)."""
        return name in self.path.parts

    def is_core(self) -> bool:
        """Part of :mod:`repro.core`."""
        return self.in_package("core")

    def is_benchmark(self) -> bool:
        """A benchmark driver (``benchmarks/`` dir or ``bench_*.py``)."""
        return self.in_package("benchmarks") or self.path.name.startswith("bench_")

    def suppressed(self, line: int, code: str) -> bool:
        """Is ``code`` silenced on ``line`` by a ``# wpl: noqa`` comment?"""
        codes = self.noqa.get(line, _MISSING)
        if codes is _MISSING:
            return False
        return codes is None or code.upper() in codes


_MISSING: Any = object()


def _collect_noqa(text: str) -> Dict[int, Optional[Set[str]]]:
    """Map line numbers to the rule codes suppressed there.

    Uses the tokenizer (not a per-line regex) so the directive is only
    honoured inside real comments, never inside string literals.
    """
    out: Dict[int, Optional[Set[str]]] = {}
    lines = iter(text.splitlines(keepends=True))
    try:
        tokens = list(tokenize.generate_tokens(lambda: next(lines, "")))
    except tokenize.TokenError:
        return out
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        codes = match.group("codes")
        line = token.start[0]
        if codes is None:
            out[line] = None
        else:
            parsed = {code.strip().upper() for code in codes.split(",") if code.strip()}
            existing = out.get(line, _MISSING)
            if existing is _MISSING:
                out[line] = parsed
            elif existing is not None:
                existing.update(parsed)
    return out


class Rule:
    """Base class: one named, coded check over a parsed module."""

    code = "WPL000"
    name = "abstract"
    description = ""

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield findings for ``module``."""
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            code=self.code,
            rule=self.name,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.code})"


class LintEngine:
    """Registry of rules plus the run loop over files and directories."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None else []
        seen: Set[str] = set()
        for rule in self.rules:
            if rule.code in seen:
                raise ValueError(f"duplicate rule code {rule.code}")
            seen.add(rule.code)

    def register(self, rule: Rule) -> None:
        """Add one rule; codes must stay unique."""
        if any(existing.code == rule.code for existing in self.rules):
            raise ValueError(f"duplicate rule code {rule.code}")
        self.rules.append(rule)

    # -- running ---------------------------------------------------------------

    def lint_module(self, module: Module) -> List[Finding]:
        """All non-suppressed findings for one parsed module."""
        findings: List[Finding] = []
        for rule in self.rules:
            for finding in rule.check(module):
                if not module.suppressed(finding.line, finding.code):
                    findings.append(finding)
        findings.sort(key=lambda f: (str(f.path), f.line, f.col, f.code))
        return findings

    def lint_file(self, path: Path) -> List[Finding]:
        """Parse and lint one file; syntax errors become ``WPL900``."""
        try:
            module = Module.parse(path)
        except SyntaxError as exc:
            return [
                Finding(
                    code="WPL900",
                    rule="syntax-error",
                    path=path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"cannot parse file: {exc.msg}",
                )
            ]
        return self.lint_module(module)

    def lint_paths(self, paths: Iterable[Path]) -> List[Finding]:
        """Lint files and (recursively) directories of ``*.py`` files.

        The merged list is re-sorted globally — per-file lists are already
        ordered, but callers may pass paths in any order and reports (and
        report diffs) should not depend on it."""
        findings: List[Finding] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                for file in sorted(path.rglob("*.py")):
                    findings.extend(self.lint_file(file))
            else:
                findings.extend(self.lint_file(path))
        findings.sort(key=lambda f: (str(f.path), f.line, f.col, f.code))
        return findings


# -- output ---------------------------------------------------------------------


def format_human(findings: Sequence[Finding]) -> str:
    """``path:line:col  CODE  message`` lines plus a summary tail."""
    lines = [
        f"{finding.path}:{finding.line}:{finding.col}  {finding.code}  {finding.message}"
        for finding in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable key order for diffing in CI)."""
    payload = {
        "findings": [finding.as_dict() for finding in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
