"""Repo-specific concurrency-discipline lint rules (``WPL001``–``WPL010``).

Each rule encodes one invariant Whirlpool-M's correctness (or the bench
suite's honesty) rests on.  They are deliberately narrow: a rule that
over-approximates gets suppressed into noise, a rule that encodes exactly
the discipline the code review would enforce stays load-bearing.

Static-analysis limits worth knowing:

- *shared-state-guard* only sees **direct** ``self.attr`` writes in a
  method's own statements.  Writes inside nested functions / lambdas are
  skipped — whether the closure runs under a lock is a runtime property
  (that is :mod:`repro.analysis.racecheck`'s job, and exactly how
  ``ExecutionStats._locked`` routes its counter updates).
- *no-bare-thread* checks construction kwargs (``name=``, ``daemon=True``);
  it cannot prove the thread is joined — the racecheck stress test and the
  ``_InFlight`` counter cover liveness.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.engine import Finding, Module, Rule

#: Classes whose internals are shared across Whirlpool-M threads, or
#: across the query service's worker pool and its submitting clients.
SHARED_CLASSES: Set[str] = {
    "TopKSet",
    "ExecutionStats",
    "EngineStats",
    "ExecutionTrace",
    "MatchQueue",
    "_InFlight",
    "FaultInjector",
    "Supervisor",
    "AdmissionQueue",
    "CircuitBreaker",
    "ServiceCounters",
    "Ticket",
    "WhirlpoolService",
    # Observability layer: instruments are bumped by every worker thread,
    # spans cross the submit-thread → worker handoff, the slow-query log
    # and registry are read by health() while workers write.
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "SlowQueryLog",
    # Recovery stores: checkpoint sinks write from worker threads while
    # drain / recover() / health() read concurrently.
    "MemoryRecoveryStore",
    "JsonFileRecoveryStore",
    # Cluster layer: the coordinator is driven by one query thread while
    # health()/probe() read per-shard counters from others, and the
    # backend maps documents to coordinators under service workers.
    "Coordinator",
    "ShardHandle",
    "ClusterBackend",
    # Transports: send() sequences frames under the transport lock while
    # the coordinator's reconnect/kill paths race it from failover.
    "Transport",
    "PipeTransport",
    "SocketTransport",
    # Index hot path: servers are shared when the service reuses cached
    # engines across worker threads, their probe memo / count caches are
    # written per probe, columnar indexes rebuild their arenas on insert,
    # and probe-cost accounting is bumped from every server thread.
    "Server",
    "ColumnarTagIndex",
    "ProbeCost",
    # Simulation layer: the installed clock is process-global — every
    # engine/service/cluster thread reads it, and a VirtualClock's warp
    # offset is bumped from whichever thread sleeps first.
    "VirtualClock",
}

#: Mutating container methods that count as writes when called on a
#: ``self.<attr>`` of a shared class.
_MUTATORS: Set[str] = {
    "append",
    "extend",
    "insert",
    "add",
    "discard",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "appendleft",
}

#: ``time`` module members that read the wall clock or block on it.
_WALLCLOCK = {
    "time",
    "time_ns",
    "sleep",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
}


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


class SharedStateGuardRule(Rule):
    """WPL001: shared-class attribute writes must sit under ``with self._lock``.

    Applies to methods of :data:`SHARED_CLASSES` (``__init__`` excepted —
    the object is not shared before construction completes).  A guard is a
    ``with`` on a ``self`` attribute whose name contains ``lock`` or
    ``cond`` (or is ``_not_empty``, the queue's condition).
    """

    code = "WPL001"
    name = "shared-state-guard"
    description = "write to shared-class state outside a `with self._lock` block"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name not in SHARED_CLASSES:
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name == "__init__":
                    continue
                for finding in self._scan(module, node.name, item.body, False):
                    yield finding

    # -- statement walk, tracking the guard state --------------------------------

    def _scan(
        self,
        module: Module,
        class_name: str,
        stmts: Sequence[ast.stmt],
        guarded: bool,
    ) -> Iterator[Finding]:
        for stmt in stmts:
            # Nested defs run later, possibly under a lock taken by the
            # caller (the ExecutionStats._locked idiom) — out of scope.
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = guarded or any(
                    self._is_guard(item.context_expr) for item in stmt.items
                )
                for finding in self._scan(module, class_name, stmt.body, inner):
                    yield finding
                continue
            if not guarded:
                for attr, site in self._writes(stmt):
                    yield self.finding(
                        module,
                        site,
                        f"unguarded write to shared state {class_name}.{attr} "
                        f"(wrap in `with self._lock:`)",
                    )
            for block in self._sub_blocks(stmt):
                for finding in self._scan(module, class_name, block, guarded):
                    yield finding

    @staticmethod
    def _sub_blocks(stmt: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
        for field in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field, None)
            if block:
                yield block
        for handler in getattr(stmt, "handlers", []) or []:
            yield handler.body

    @staticmethod
    def _is_guard(expr: ast.expr) -> bool:
        return _is_self_attr(expr) and (
            "lock" in expr.attr or "cond" in expr.attr or expr.attr == "_not_empty"  # type: ignore[attr-defined]
        )

    def _writes(self, stmt: ast.stmt) -> List[Tuple[str, ast.AST]]:
        """(attribute name, anchor node) pairs for writes this statement makes."""
        out: List[Tuple[str, ast.AST]] = []
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                out.extend(self._target_attrs(target))
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if stmt.target is not None:
                out.extend(self._target_attrs(stmt.target))
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and _is_self_attr(func.value)
            ):
                out.append((func.value.attr, stmt))  # type: ignore[attr-defined]
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                out.extend(self._target_attrs(target))
        return out

    def _target_attrs(self, target: ast.expr) -> List[Tuple[str, ast.AST]]:
        if _is_self_attr(target):
            return [(target.attr, target)]  # type: ignore[attr-defined]
        if isinstance(target, ast.Subscript) and _is_self_attr(target.value):
            return [(target.value.attr, target)]  # type: ignore[attr-defined]
        if isinstance(target, (ast.Tuple, ast.List)):
            out: List[Tuple[str, ast.AST]] = []
            for element in target.elts:
                out.extend(self._target_attrs(element))
            return out
        if isinstance(target, ast.Starred):
            return self._target_attrs(target.value)
        return []


class NoBareThreadRule(Rule):
    """WPL002: every ``threading.Thread(...)`` gets ``name=`` and ``daemon=True``.

    Named daemons are the repo's thread discipline: names make traces and
    racecheck reports attributable, daemon-ness keeps a crashed engine
    from wedging interpreter shutdown, and the engine's join/``_InFlight``
    tracking (checked dynamically) covers termination.
    """

    code = "WPL002"
    name = "no-bare-thread"
    description = "thread constructed without name= and daemon=True"

    def check(self, module: Module) -> Iterator[Finding]:
        thread_names = self._thread_references(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_thread_ctor(node.func, thread_names):
                continue
            missing = []
            keywords = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            if "name" not in keywords:
                missing.append("name=")
            daemon = keywords.get("daemon")
            if not (isinstance(daemon, ast.Constant) and daemon.value is True):
                missing.append("daemon=True")
            if missing:
                yield self.finding(
                    module,
                    node,
                    "bare thread: construct via a named helper passing "
                    + " and ".join(missing),
                )

    @staticmethod
    def _thread_references(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
        """(module aliases of ``threading``, direct names bound to ``Thread``)."""
        modules: Set[str] = set()
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "threading":
                        modules.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "threading":
                for alias in node.names:
                    if alias.name == "Thread":
                        names.add(alias.asname or alias.name)
        return modules, names

    @staticmethod
    def _is_thread_ctor(func: ast.expr, refs: Tuple[Set[str], Set[str]]) -> bool:
        modules, names = refs
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "Thread"
            and isinstance(func.value, ast.Name)
            and func.value.id in modules
        ):
            return True
        return isinstance(func, ast.Name) and func.id in names


class EngineContractRule(Rule):
    """WPL003: direct ``EngineBase`` subclasses honour the engine contract.

    They must set the ``algorithm`` class attribute (result labelling and
    the facade's dispatch table depend on it) and must *not* reimplement
    ``make_server_queue`` — queue-policy construction is centralized so
    the pruning/priority behaviour stays comparable across engines.
    """

    code = "WPL003"
    name = "engine-contract"
    description = "EngineBase subclass missing `algorithm` or overriding make_server_queue"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(self._is_engine_base(base) for base in node.bases):
                continue
            if not self._sets_algorithm(node):
                yield self.finding(
                    module,
                    node,
                    f"engine {node.name} must set the `algorithm` class attribute",
                )
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "make_server_queue"
                ):
                    yield self.finding(
                        module,
                        item,
                        f"engine {node.name} must not reimplement make_server_queue "
                        f"(queue policy/pruning is owned by EngineBase)",
                    )

    @staticmethod
    def _is_engine_base(base: ast.expr) -> bool:
        if isinstance(base, ast.Name):
            return base.id == "EngineBase"
        return isinstance(base, ast.Attribute) and base.attr == "EngineBase"

    @staticmethod
    def _sets_algorithm(node: ast.ClassDef) -> bool:
        for item in node.body:
            if isinstance(item, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "algorithm"
                for target in item.targets
            ):
                return True
            if (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and item.target.id == "algorithm"
                and item.value is not None
            ):
                return True
        return False


class NoWallclockInCoreRule(Rule):
    """WPL004: no wall-clock reads or sleeps in ``core/`` outside ``stats.py``.

    Engine results must be a function of (database, query, k, policy) —
    wall-clock coupling in control flow makes runs non-reproducible and
    benchmarks dishonest.  Timing belongs to ``core/stats.py`` (which
    carries the sanctioned ``# wpl: noqa=WPL001`` clock writes) and to
    :mod:`repro.simulate` for modeled latency.
    """

    code = "WPL004"
    name = "no-wallclock-in-core"
    description = "wall-clock use (time.time/sleep/...) in core/ outside stats.py"

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.is_core() or module.path.name == "stats.py":
            return
        time_aliases: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                yield self.finding(
                    module,
                    node,
                    "core/ must not import from `time` (keep timing in stats.py "
                    "or repro.simulate)",
                )
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _WALLCLOCK
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in time_aliases
            ):
                yield self.finding(
                    module,
                    node,
                    f"wall-clock call time.{node.func.attr}() in core/ "
                    f"(allowed only in stats.py)",
                )


class BenchImportsPublicApiRule(Rule):
    """WPL005: benchmark drivers import ``repro.core`` only via its package API.

    Benchmarks are the paper's measurements; pinning them to
    ``repro.core.__init__`` exports keeps them honest about what the
    public engine surface provides and lets internals be refactored
    without silently changing what is measured.
    """

    code = "WPL005"
    name = "bench-imports-public-api"
    description = "benchmark imports a repro.core submodule instead of the public API"

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.is_benchmark():
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module is not None and node.module.startswith("repro.core."):
                    yield self.finding(
                        module,
                        node,
                        f"import from `repro.core` (public API), not "
                        f"`{node.module}`",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro.core."):
                        yield self.finding(
                            module,
                            node,
                            f"import `repro.core` (public API), not `{alias.name}`",
                        )


class InFlightPairingRule(Rule):
    """WPL006: worker-loop in-flight accounting must be crash-proof.

    Whirlpool-M terminates when the in-flight counter drains; a worker
    body that decrements it *inline* leaks the count (and stalls
    termination until the deadlock backstop) the moment anything between
    the dequeue and the ``dec()`` raises.  Two checks, scoped to
    ``core/`` modules:

    - a statement-level ``<obj>.dec()`` call inside a loop body must sit
      in the ``finally`` block of a ``try`` — the only placement that
      survives a crashing body;
    - no bare ``except:`` handlers at all — swallowing ``SystemExit`` /
      ``KeyboardInterrupt`` in engine code hides crashed workers instead
      of containing them.
    """

    code = "WPL006"
    name = "inflight-pairing"
    description = "loop-body in_flight.dec() outside try/finally, or bare except, in core/"

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.is_core():
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:` swallows worker crashes (catch a concrete "
                    "exception type and record the failure)",
                )
        for finding in self._scan(module, module.tree.body, False, False):
            yield finding

    def _scan(
        self,
        module: Module,
        stmts: Sequence[ast.stmt],
        in_loop: bool,
        in_finally: bool,
    ) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                # A nested def is its own accounting scope.
                for finding in self._scan(module, stmt.body, False, False):
                    yield finding
                continue
            if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                for finding in self._scan(module, stmt.body, True, in_finally):
                    yield finding
                for finding in self._scan(module, stmt.orelse, True, in_finally):
                    yield finding
                continue
            if isinstance(stmt, ast.Try):
                for block in (stmt.body, stmt.orelse):
                    for finding in self._scan(module, block, in_loop, in_finally):
                        yield finding
                for handler in stmt.handlers:
                    for finding in self._scan(
                        module, handler.body, in_loop, in_finally
                    ):
                        yield finding
                for finding in self._scan(module, stmt.finalbody, in_loop, True):
                    yield finding
                continue
            if in_loop and not in_finally and self._is_dec_call(stmt):
                yield self.finding(
                    module,
                    stmt,
                    "in-flight dec() inline in a loop body leaks the count "
                    "when the body raises (move it into `finally:`)",
                )
            for field in ("body", "orelse"):
                block = getattr(stmt, field, None)
                if block:
                    for finding in self._scan(module, block, in_loop, in_finally):
                        yield finding

    @staticmethod
    def _is_dec_call(stmt: ast.stmt) -> bool:
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "dec"
        )


class UnboundedServiceQueueRule(Rule):
    """WPL007: no unbounded stdlib queues in the service layer.

    The query service's entire backpressure story rests on its admission
    queue being *bounded*; an unbounded ``queue.Queue()`` (no ``maxsize``,
    or ``maxsize<=0``) or a ``SimpleQueue`` anywhere under
    ``src/repro/service/`` silently reopens the overload hole the
    admission policies exist to close.  A ``maxsize`` that is a positive
    constant, or any non-constant expression (assumed to be a validated
    capacity), is accepted.  Scoped to files inside a ``service``
    package directory.
    """

    code = "WPL007"
    name = "no-unbounded-service-queue"
    description = "unbounded queue.Queue/SimpleQueue constructed in service/ code"

    #: Bounded-capable constructors (first positional arg / kwarg is maxsize).
    _SIZED = {"Queue", "LifoQueue", "PriorityQueue"}
    #: Constructors with no capacity bound at all.
    _UNBOUNDED = {"SimpleQueue"}

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.in_package("service"):
            return
        modules, names = self._queue_references(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            ctor = self._ctor_name(node.func, modules, names)
            if ctor is None:
                continue
            if ctor in self._UNBOUNDED:
                yield self.finding(
                    module,
                    node,
                    f"{ctor} has no capacity bound; use the bounded "
                    f"AdmissionQueue (or a Queue with maxsize)",
                )
                continue
            maxsize = self._maxsize_argument(node)
            if maxsize is None:
                yield self.finding(
                    module,
                    node,
                    f"unbounded {ctor}() in service code: pass a positive "
                    f"maxsize (backpressure requires a bound)",
                )
            elif isinstance(maxsize, ast.Constant) and (
                maxsize.value is None
                or (isinstance(maxsize.value, (int, float)) and maxsize.value <= 0)
            ):
                yield self.finding(
                    module,
                    node,
                    f"{ctor}(maxsize={maxsize.value!r}) is unbounded: "
                    f"maxsize must be a positive capacity",
                )

    @staticmethod
    def _queue_references(tree: ast.Module) -> Tuple[Set[str], Dict[str, str]]:
        """(aliases of the ``queue`` module, local name → ctor name)."""
        modules: Set[str] = set()
        names: Dict[str, str] = {}
        interesting = (
            UnboundedServiceQueueRule._SIZED | UnboundedServiceQueueRule._UNBOUNDED
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "queue":
                        modules.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "queue":
                for alias in node.names:
                    if alias.name in interesting:
                        names[alias.asname or alias.name] = alias.name
        return modules, names

    @classmethod
    def _ctor_name(
        cls, func: ast.expr, modules: Set[str], names: Dict[str, str]
    ) -> Optional[str]:
        watched = cls._SIZED | cls._UNBOUNDED
        if (
            isinstance(func, ast.Attribute)
            and func.attr in watched
            and isinstance(func.value, ast.Name)
            and func.value.id in modules
        ):
            return func.attr
        if isinstance(func, ast.Name):
            return names.get(func.id)
        return None

    @staticmethod
    def _maxsize_argument(node: ast.Call) -> Optional[ast.expr]:
        if node.args:
            return node.args[0]
        for keyword in node.keywords:
            if keyword.arg == "maxsize":
                return keyword.value
        return None


class NoWallclockDurationRule(Rule):
    """WPL008: no ``time.time()`` / ``time.time_ns()`` anywhere in ``repro``.

    Wall-clock timestamps step (NTP slews, suspend/resume), so durations
    derived from them lie — and every duration this repo records feeds a
    latency histogram, a span, or a deadline.  The sanctioned clock is
    :func:`repro.core.stats.monotonic_seconds`; ``stats.py`` gets no
    exemption here because even it has no business calling ``time.time``
    (its own exception, WPL004, covers the *monotonic* family only).
    """

    code = "WPL008"
    name = "no-wallclock-duration"
    description = "time.time()/time.time_ns() in repro code (use monotonic_seconds)"

    _FORBIDDEN = {"time", "time_ns"}

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.in_package("repro"):
            return
        time_aliases: Set[str] = set()
        direct_names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._FORBIDDEN:
                        direct_names.add(alias.asname or alias.name)
                        yield self.finding(
                            module,
                            node,
                            f"importing time.{alias.name} invites wall-clock "
                            f"durations (use repro.core.stats.monotonic_seconds)",
                        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._FORBIDDEN
                and isinstance(func.value, ast.Name)
                and func.value.id in time_aliases
            ):
                yield self.finding(
                    module,
                    node,
                    f"time.{func.attr}() measures the wall clock; durations "
                    f"must use repro.core.stats.monotonic_seconds",
                )
            elif isinstance(func, ast.Name) and func.id in direct_names:
                yield self.finding(
                    module,
                    node,
                    f"{func.id}() is time.time — durations must use "
                    f"repro.core.stats.monotonic_seconds",
                )


class NoPickleSnapshotRule(Rule):
    """WPL009: no ``pickle``-family serialization anywhere in ``repro``.

    Recovery snapshots are the one thing this repo persists and reloads
    across process lifetimes, so they must stay versioned, inspectable
    and forward-portable JSON (:mod:`repro.recovery.codec`).  Pickle (and
    its relatives) would silently couple the on-disk format to class
    layout and import paths — a snapshot that stops loading after a
    refactor is worse than no snapshot — and unpickling untrusted files
    executes arbitrary code.  Import detection suffices: there is no
    sanctioned use anywhere in the package.
    """

    code = "WPL009"
    name = "no-pickle-snapshot"
    description = "pickle/marshal import in repro code (snapshots are versioned JSON)"

    _FORBIDDEN = {"pickle", "cPickle", "marshal", "shelve", "dill"}

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.in_package("repro"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._FORBIDDEN:
                        yield self.finding(
                            module,
                            node,
                            f"import {alias.name}: snapshots must use the "
                            f"versioned JSON codec (repro.recovery.codec), "
                            f"not {root}",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                root = node.module.split(".")[0]
                if root in self._FORBIDDEN:
                    yield self.finding(
                        module,
                        node,
                        f"from {node.module} import ...: snapshots must use "
                        f"the versioned JSON codec (repro.recovery.codec), "
                        f"not {root}",
                    )


class NoDirectSleepRule(Rule):
    """WPL010: no direct ``time.sleep`` in ``repro`` outside the clock seam.

    Deterministic simulation rests on a single choke point for blocking
    on time: :mod:`repro.sim.clock`.  A stray ``time.sleep`` elsewhere is
    invisible to the :class:`~repro.sim.clock.VirtualClock` — it burns
    real wall seconds in every simulated chaos run *and* introduces a
    pacing wait no fault schedule can warp past, quietly breaking the
    ≥2× wall-time contract the simulation layer documents.  Pacing goes
    through ``simclock.sleep``/``simclock.wait``; progress waits on
    conditions go through ``simclock.wait_for``; only ``sim/clock.py``
    itself may call ``time.sleep``.
    """

    code = "WPL010"
    name = "no-direct-sleep"
    description = "direct time.sleep in repro code (route through repro.sim.clock)"

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.in_package("repro"):
            return
        if module.path.name == "clock.py" and module.in_package("sim"):
            return
        time_aliases: Set[str] = set()
        direct_names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        direct_names.add(alias.asname or alias.name)
                        yield self.finding(
                            module,
                            node,
                            "importing time.sleep bypasses the clock seam "
                            "(use repro.sim.clock.sleep)",
                        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id in time_aliases
            ):
                yield self.finding(
                    module,
                    node,
                    "direct time.sleep() is invisible to the VirtualClock; "
                    "route the wait through repro.sim.clock",
                )
            elif isinstance(func, ast.Name) and func.id in direct_names:
                yield self.finding(
                    module,
                    node,
                    f"{func.id}() is time.sleep — route the wait through "
                    f"repro.sim.clock",
                )


def default_rules() -> List[Rule]:
    """One fresh instance of every built-in rule, code order."""
    return [
        SharedStateGuardRule(),
        NoBareThreadRule(),
        EngineContractRule(),
        NoWallclockInCoreRule(),
        BenchImportsPublicApiRule(),
        InFlightPairingRule(),
        UnboundedServiceQueueRule(),
        NoWallclockDurationRule(),
        NoPickleSnapshotRule(),
        NoDirectSleepRule(),
    ]
