"""Delta-debugging shrinker: reduce a violating schedule to a minimal
reproducer.

Given a schedule whose run violates the invariant suite, the shrinker
finds a (locally) minimal sub-schedule that *still* violates it, in two
passes:

1. **Trigger minimization** — classic ddmin over the trigger list:
   try dropping chunks of triggers (halves, then quarters, …) and keep
   any reduction that still reproduces a violation.  Converges to a
   1-minimal set: removing any single remaining trigger loses the bug.
2. **Step minimization** — for each surviving trigger, walk its firing
   step toward 1 (binary first, then linear) while the violation
   persists, so the reproducer fires as early as possible and replays
   fast.

"Still violates" means *any* invariant breaks, not necessarily the same
one — for minimization purposes a schedule that trips a different
invariant is still a counterexample worth keeping small.  (Callers that
care can post-filter on the report.)

Minimal reproducers serialize to ``tests/fixtures/sim/`` via
:func:`write_fixture`: one JSON document carrying the scenario, the
shrunk schedule, and the invariant verdicts the replay test asserts
byte-for-byte.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.sim.harness import SimHarness, SimRun, SimScenario
from repro.sim.schedule import FaultSchedule, SimTrigger

#: Fixture format version (bump on incompatible change).
FIXTURE_VERSION = 1


class ShrinkStats:
    """Shrink accounting: how many candidate runs minimization cost."""

    def __init__(self) -> None:
        self.runs = 0
        self.reductions = 0

    def as_dict(self) -> Dict[str, int]:
        return {"runs": self.runs, "reductions": self.reductions}


class ScheduleShrinker:
    """ddmin over triggers, then per-trigger step minimization."""

    def __init__(self, harness: SimHarness, max_runs: int = 200) -> None:
        self.harness = harness
        self.max_runs = max_runs
        self.stats = ShrinkStats()
        self._cache: Dict[FaultSchedule, bool] = {}

    # -- the oracle --------------------------------------------------------------

    def _violates(self, schedule: FaultSchedule) -> bool:
        if not schedule.triggers:
            return False
        cached = self._cache.get(schedule)
        if cached is not None:
            return cached
        if self.stats.runs >= self.max_runs:
            return False
        self.stats.runs += 1
        verdict = not self.harness.run(schedule).ok()
        self._cache[schedule] = verdict
        return verdict

    # -- pass 1: ddmin over the trigger list -------------------------------------

    def _ddmin(self, triggers: List[SimTrigger]) -> List[SimTrigger]:
        granularity = 2
        while len(triggers) >= 2:
            chunk = max(len(triggers) // granularity, 1)
            reduced = False
            start = 0
            while start < len(triggers):
                candidate = triggers[:start] + triggers[start + chunk :]
                if candidate and self._violates(FaultSchedule(candidate)):
                    triggers = candidate
                    granularity = max(granularity - 1, 2)
                    self.stats.reductions += 1
                    reduced = True
                    break
                start += chunk
            if not reduced:
                if granularity >= len(triggers):
                    break
                granularity = min(granularity * 2, len(triggers))
        return triggers

    # -- pass 2: pull each step toward 1 ----------------------------------------

    def _with_step(
        self, triggers: List[SimTrigger], index: int, step: int
    ) -> List[SimTrigger]:
        out = list(triggers)
        old = out[index]
        out[index] = SimTrigger(
            old.site,
            step,
            old.action,
            target=old.target,
            delay_seconds=old.delay_seconds,
            message=old.message,
        )
        return out

    def _minimize_steps(self, triggers: List[SimTrigger]) -> List[SimTrigger]:
        for index in range(len(triggers)):
            # Binary descent: biggest halving of the step that still fails.
            while triggers[index].step > 1:
                half = triggers[index].step // 2
                candidate = self._with_step(triggers, index, half)
                if self._violates(FaultSchedule(candidate)):
                    triggers = candidate
                    self.stats.reductions += 1
                    continue
                break
            # Linear tail: step-1 probes catch the off-by-one boundary.
            while triggers[index].step > 1:
                candidate = self._with_step(triggers, index, triggers[index].step - 1)
                if self._violates(FaultSchedule(candidate)):
                    triggers = candidate
                    self.stats.reductions += 1
                    continue
                break
        return triggers

    # -- entry point -------------------------------------------------------------

    def shrink(self, schedule: FaultSchedule) -> FaultSchedule:
        """Minimize ``schedule``; raises if it does not violate at all."""
        if not self._violates(schedule):
            raise ValueError(
                "shrink() needs a violating schedule "
                f"({' + '.join(schedule.describe()) or '<empty>'} passed all invariants)"
            )
        triggers = self._ddmin(list(schedule.triggers))
        triggers = self._minimize_steps(triggers)
        minimal = FaultSchedule(triggers, name=schedule.name)
        # The result must still reproduce — guaranteed by construction,
        # but assert it so a future harness regression fails loudly here.
        assert self._violates(minimal)
        return minimal


def shrink(
    harness: SimHarness, schedule: FaultSchedule, max_runs: int = 200
) -> FaultSchedule:
    """Convenience wrapper around :class:`ScheduleShrinker`."""
    return ScheduleShrinker(harness, max_runs=max_runs).shrink(schedule)


# -- fixture corpus -----------------------------------------------------------


def fixture_payload(
    scenario: SimScenario, run: SimRun, name: str
) -> Dict[str, Any]:
    """The JSON document a corpus fixture stores: scenario + schedule +
    the invariant verdicts a replay must reproduce byte-for-byte."""
    assert run.report is not None
    return {
        "version": FIXTURE_VERSION,
        "name": name,
        "scenario": scenario.as_dict(),
        "schedule": run.schedule.as_dict(),
        "verdicts": run.report.as_dict(),
    }


def write_fixture(
    path: Union[str, Path], scenario: SimScenario, run: SimRun, name: str
) -> Path:
    """Serialize a shrunk reproducer (canonical JSON) to ``path``."""
    target = Path(path)
    target.write_text(
        json.dumps(fixture_payload(scenario, run, name), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return target


def load_fixture(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse a corpus fixture back into (scenario, schedule, verdicts)."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = int(payload.get("version", FIXTURE_VERSION))
    if version != FIXTURE_VERSION:
        raise ValueError(
            f"unsupported sim fixture version {version} in {path} "
            f"(this build reads version {FIXTURE_VERSION})"
        )
    return {
        "name": str(payload.get("name", "")),
        "scenario": SimScenario.from_dict(payload["scenario"]),
        "schedule": FaultSchedule.from_dict(payload["schedule"]),
        "verdicts": payload["verdicts"],
    }


def replay_fixture(
    path: Union[str, Path],
    virtual: bool = True,
) -> Dict[str, Any]:
    """Re-run a corpus fixture; returns recorded vs replayed verdicts.

    The replay contract: ``replayed`` must equal ``recorded`` exactly
    (same JSON bytes), run after run — that is what "deterministic
    simulation" means here.
    """
    fixture = load_fixture(path)
    harness = SimHarness(fixture["scenario"], virtual=virtual)
    run = harness.run(fixture["schedule"])
    assert run.report is not None
    return {
        "name": fixture["name"],
        "recorded": fixture["verdicts"],
        "replayed": run.report.as_dict(),
        "matches": fixture["verdicts"] == run.report.as_dict(),
        "run": run,
    }
