"""The invariant suite checked after every simulated run.

Each invariant is one facet of the paper's correctness-under-adversity
contract (docs/robustness.md): whatever a fault schedule does to the
run, the result must be *exact or certified*.  Checks are pure functions
from results to :class:`Verdict` values with deterministic detail
strings — a corpus fixture records its verdicts and the replay test
compares them byte-for-byte, so nothing time- or id-dependent may leak
into a detail.

The five invariants:

- ``reference_clean`` — the fault-free baseline itself ran undegraded
  (a broken baseline would vacuously pass everything else);
- ``topk_identity`` — a run that does not claim degradation returns the
  *bit-identical* top-k (roots and scores) of the fault-free run;
- ``pending_bound_sound`` — a degraded run's certificate covers every
  fault-free answer it lost: no missing answer scores above
  ``pending_bound``;
- ``single_outcome`` — the harness observed exactly one terminal
  outcome for the run (one result, or one crash resolved by exactly one
  recovery) — the engine-level mirror of the service's
  exactly-one-outcome-per-ticket drain audit;
- ``no_leaked_state`` — the run left nothing behind: a fault-free rerun
  on the same engine reproduces the baseline (no poisoned caches or
  stuck in-flight work), and a cluster coordinator reports itself idle
  with no live shard still holding query state;
- ``missing_shards_named`` (cluster runs) — degraded answers *name* the
  shards whose work they lost; an undegraded answer names none.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.base import TopKResult

#: Score comparisons tolerate only float-formatting noise, nothing
#: semantic: identity checks round-trip through ``repr`` equality.
_EPS = 1e-9


class Verdict:
    """One invariant's outcome for one simulated run."""

    __slots__ = ("name", "ok", "detail")

    def __init__(self, name: str, ok: bool, detail: str) -> None:
        self.name = name
        self.ok = ok
        self.detail = detail

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Verdict":
        return cls(str(payload["name"]), bool(payload["ok"]), str(payload["detail"]))

    def __repr__(self) -> str:
        flag = "ok" if self.ok else "VIOLATED"
        return f"Verdict({self.name}: {flag} — {self.detail})"


class InvariantReport:
    """All verdicts for one simulated run, in canonical order."""

    def __init__(self, verdicts: Sequence[Verdict]) -> None:
        self.verdicts: List[Verdict] = list(verdicts)

    def ok(self) -> bool:
        return all(verdict.ok for verdict in self.verdicts)

    def violations(self) -> List[Verdict]:
        return [verdict for verdict in self.verdicts if not verdict.ok]

    def as_dict(self) -> List[Dict[str, Any]]:
        return [verdict.as_dict() for verdict in self.verdicts]

    def to_json(self) -> str:
        """Canonical JSON — the byte-for-byte replay comparison form."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_payload(cls, payload: Sequence[Mapping[str, Any]]) -> "InvariantReport":
        return cls([Verdict.from_dict(entry) for entry in payload])

    def __repr__(self) -> str:
        bad = len(self.violations())
        return f"InvariantReport({len(self.verdicts)} checks, {bad} violated)"


def _answer_keys(result: TopKResult) -> List[Tuple[str, str]]:
    """(dewey, repr(score)) pairs — the bit-identity comparison key."""
    return [
        (".".join(str(c) for c in answer.root_node.dewey), repr(answer.score))
        for answer in result.answers
    ]


# -- the checks ----------------------------------------------------------------


def check_reference_clean(reference: TopKResult) -> Verdict:
    if reference.degraded:
        return Verdict(
            "reference_clean", False, "fault-free baseline run reported degraded"
        )
    return Verdict(
        "reference_clean",
        True,
        f"baseline returned {len(reference.answers)} undegraded answers",
    )


def check_topk_identity(reference: TopKResult, result: TopKResult) -> Verdict:
    """A non-degraded run must equal the fault-free run bit-for-bit."""
    if result.degraded:
        return Verdict(
            "topk_identity",
            True,
            "run is degraded: identity waived, certificate checked instead",
        )
    want, got = _answer_keys(reference), _answer_keys(result)
    if want == got:
        return Verdict(
            "topk_identity", True, f"{len(got)} answers bit-identical to baseline"
        )
    missing = [key[0] for key in want if key not in got]
    extra = [key[0] for key in got if key not in want]
    return Verdict(
        "topk_identity",
        False,
        f"undegraded run diverged from baseline (missing={missing!r}, "
        f"unexpected={extra!r})",
    )


def check_pending_bound_sound(reference: TopKResult, result: TopKResult) -> Verdict:
    """Nothing the run lost may score above its ``pending_bound``."""
    bound = result.pending_bound
    if bound < 0.0 or bound == float("inf"):
        return Verdict(
            "pending_bound_sound", False, f"certificate is not finite/sane: {bound!r}"
        )
    reported = {key[0] for key in _answer_keys(result)}
    worst: Optional[Tuple[str, float]] = None
    for answer in reference.answers:
        dewey = ".".join(str(c) for c in answer.root_node.dewey)
        if dewey in reported:
            continue
        if answer.score > bound + _EPS and (worst is None or answer.score > worst[1]):
            worst = (dewey, answer.score)
    if worst is not None:
        return Verdict(
            "pending_bound_sound",
            False,
            f"lost answer {worst[0]} scores {worst[1]!r} above "
            f"pending_bound {bound!r}",
        )
    lost = len(reference.answers) - sum(
        1
        for answer in reference.answers
        if ".".join(str(c) for c in answer.root_node.dewey) in reported
    )
    return Verdict(
        "pending_bound_sound",
        True,
        f"{lost} lost answers all covered by the certificate",
    )


def check_single_outcome(outcomes: int) -> Verdict:
    """Exactly one terminal outcome (result / crash-then-recovery) per run."""
    if outcomes == 1:
        return Verdict("single_outcome", True, "exactly one terminal outcome observed")
    return Verdict(
        "single_outcome", False, f"{outcomes} terminal outcomes observed (expected 1)"
    )


def check_no_leaked_state(leak: Optional[str]) -> Verdict:
    """``leak`` is the harness's finding (None when everything drained)."""
    if leak is None:
        return Verdict(
            "no_leaked_state", True, "fault-free rerun clean; no resident query state"
        )
    return Verdict("no_leaked_state", False, leak)


def check_missing_shards_named(
    degraded: bool, missing_shards: Sequence[int], shards: int
) -> Verdict:
    """Degraded cluster answers must say *which* shards they lost."""
    bogus = [shard for shard in missing_shards if not 0 <= shard < shards]
    if bogus:
        return Verdict(
            "missing_shards_named", False, f"missing shards out of range: {bogus!r}"
        )
    if not degraded and missing_shards:
        return Verdict(
            "missing_shards_named",
            False,
            f"undegraded answer names missing shards {list(missing_shards)!r}",
        )
    if degraded:
        return Verdict(
            "missing_shards_named",
            True,
            f"degraded answer names shards {sorted(missing_shards)!r}",
        )
    return Verdict("missing_shards_named", True, "no shards missing, none named")
