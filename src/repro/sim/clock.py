"""The clock seam: one sanctioned place where the repo touches time.

Every timed path outside the engine core — fault-injection ``DELAY``
sleeps, supervisor retry backoff, service deadlines and drain windows,
breaker probe scheduling, cluster RPC/heartbeat/reconnect ladders, the
latency simulator — reads and waits on the clock through this module
(lint rule WPL010 bans direct ``time.sleep`` everywhere else).  That
seam is what makes deterministic simulation possible: install a
:class:`VirtualClock` and chaos runs *warp* past their sleeps instead of
burning wall seconds, while deadlines, backoff ladders and probe windows
keep their exact relative semantics.

Two implementations:

- :class:`RealClock` — the default.  ``now()`` is the same monotonic
  source as :func:`repro.core.stats.monotonic_seconds` (kept textually
  separate so this module imports nothing above the foundation layer);
  ``sleep``/``wait`` really block.
- :class:`VirtualClock` — time-warp semantics.  ``now()`` is real
  monotonic time **plus a warp offset**; every ``sleep(d)`` (and every
  pacing ``wait`` that would have timed out) adds ``d`` to the offset
  and returns immediately.  Time therefore always advances at least as
  fast as real time — cross-process liveness deadlines, socket timeouts
  and hang detection keep working — but injected delays, retry backoff
  and probe intervals cost nothing.  The warp total is recorded so the
  harness can report how much wall clock a simulated run avoided.

The two wait flavours matter:

- :meth:`Clock.wait` is a **pacing** wait (an interruptible sleep on an
  event, e.g. supervisor backoff).  The virtual clock warps past it.
- :meth:`Clock.wait_for` is a **progress** wait (a condition predicate
  another thread will make true, e.g. the coordinator's query slot).
  Both clocks block for real here — under a virtual clock the waiter's
  deadline still ticks via the warp, but genuine cross-thread progress
  is never simulated away.

The installed clock is process-global (``get_clock``/``set_clock``,
or the ``use_clock`` context manager for tests); ``REPRO_SIM_CLOCK=virtual``
selects the virtual clock at startup.  Subprocess boundaries do not
inherit the *object* — cluster shard workers pin a :class:`RealClock`
explicitly, because process-level faults (HANG) must burn real time to
be observable from the coordinator side.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional


class Clock:
    """Base clock: real time.  Subclasses override the four primitives."""

    name = "real"

    def now(self) -> float:
        """Monotonic seconds (same source as ``monotonic_seconds``)."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Pacing sleep: block for ``seconds`` (no-op when <= 0)."""
        if seconds > 0:
            time.sleep(seconds)

    def wait(self, event: threading.Event, timeout: Optional[float]) -> bool:
        """Pacing wait on ``event``; True when the event is set.

        Semantically an interruptible sleep — the caller is pacing
        (backoff, probe interval), not waiting for progress it cannot
        otherwise observe.
        """
        return event.wait(timeout)

    def wait_for(
        self,
        condition: threading.Condition,
        predicate: Callable[[], bool],
        timeout: Optional[float],
    ) -> bool:
        """Progress wait: block until ``predicate()`` under ``condition``.

        Acquires the condition itself; returns the final predicate value.
        Never simulated away — the predicate is made true by real work on
        another thread, so both clocks block here (the virtual clock's
        warp only affects how fast the *deadline* approaches).
        """
        with condition:
            return condition.wait_for(predicate, timeout)

    def stats(self) -> Dict[str, float]:
        """Warp accounting (all zeros for the real clock)."""
        return {"sleeps": 0, "warped_seconds": 0.0}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RealClock(Clock):
    """The production clock (explicit alias of the base behaviour)."""


class VirtualClock(Clock):
    """Time-warp clock: sleeps advance virtual time instead of blocking.

    ``now() = monotonic + offset``; :meth:`sleep` and a timed-out
    :meth:`wait` add their duration to ``offset``.  Monotonicity is
    preserved (the offset only grows), and because real time keeps
    flowing underneath, waits on genuine cross-thread or cross-process
    progress behave exactly as they do under :class:`RealClock`.
    """

    name = "virtual"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._offset = 0.0
        self._sleeps = 0
        self._warped_seconds = 0.0

    def now(self) -> float:
        with self._lock:
            return time.monotonic() + self._offset

    def _warp(self, seconds: float) -> None:
        with self._lock:
            self._offset += seconds
            self._sleeps += 1
            self._warped_seconds += seconds

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        self._warp(seconds)
        # Yield the GIL the way a real sleep would, so thread interleaving
        # under Whirlpool-M keeps its chance to rotate at former sleep sites.
        time.sleep(0)

    def wait(self, event: threading.Event, timeout: Optional[float]) -> bool:
        if event.is_set():
            return True
        if timeout is None:
            # An unbounded pacing wait cannot be warped past (there is no
            # duration to credit); fall back to the real wait.
            return event.wait()
        self._warp(timeout)
        time.sleep(0)
        return event.is_set()

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {"sleeps": self._sleeps, "warped_seconds": self._warped_seconds}

    def __repr__(self) -> str:
        snap = self.stats()
        return (
            f"VirtualClock(warped={snap['warped_seconds']:.4f}s "
            f"over {int(snap['sleeps'])} sleeps)"
        )


#: Environment switch honoured at first use: ``REPRO_SIM_CLOCK=virtual``
#: installs a :class:`VirtualClock` for the whole process (the chaos
#: matrices run unchanged under it — that is the point).
_ENV_VAR = "REPRO_SIM_CLOCK"

_install_lock = threading.Lock()
_clock: Optional[Clock] = None


def _initial_clock() -> Clock:
    if os.environ.get(_ENV_VAR, "").strip().lower() == "virtual":
        return VirtualClock()
    return RealClock()


def get_clock() -> Clock:
    """The process-wide installed clock (lazily initialised from the env)."""
    clock = _clock
    if clock is None:
        with _install_lock:
            clock = _clock
            if clock is None:
                clock = _initial_clock()
                _set(clock)
    return clock


def _set(clock: Clock) -> None:
    global _clock
    _clock = clock


def set_clock(clock: Clock) -> Clock:
    """Install ``clock`` process-wide; returns the previously installed one."""
    with _install_lock:
        previous = _clock if _clock is not None else _initial_clock()
        _set(clock)
    return previous


@contextmanager
def use_clock(clock: Clock) -> Iterator[Clock]:
    """Context manager: install ``clock``, restore the previous on exit."""
    previous = set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(previous)


# -- module-level conveniences (what instrumented call sites import) ----------


def now() -> float:
    """``get_clock().now()`` — monotonic seconds on the installed clock."""
    return get_clock().now()


def sleep(seconds: float) -> None:
    """``get_clock().sleep(seconds)`` — the sanctioned pacing sleep."""
    get_clock().sleep(seconds)


def wait(event: threading.Event, timeout: Optional[float]) -> bool:
    """``get_clock().wait(...)`` — the sanctioned interruptible sleep."""
    return get_clock().wait(event, timeout)


def wait_for(
    condition: threading.Condition,
    predicate: Callable[[], bool],
    timeout: Optional[float],
) -> bool:
    """``get_clock().wait_for(...)`` — the sanctioned progress wait."""
    return get_clock().wait_for(condition, predicate, timeout)
