"""Schedule search: randomize fault timing, then perturb around yield points.

The chaos matrices sample fault *placement* from a seeded lottery; the
explorer searches fault *timing*.  Two phases per budget:

1. **Randomize** — draw schedules of 1–``max_triggers`` triggers with
   sites, actions and steps sampled (seeded ``random.Random``, so a
   given ``(scenario, seed, budget)`` explores the same schedules every
   time) from the scenario's fault families and the observed operation
   counts.
2. **Perturb** — for every violating or near-miss schedule, and for the
   most interesting clean ones, systematically shift each trigger's step
   by ±1/±2 around the *yield points* the run actually observed (the
   injector's per-site operation counts).  Faults are only interesting
   when they land next to a scheduling decision; stepping the trigger
   across adjacent operation indexes is exactly how a timing race is
   found once random search gets close.

Every violating run is returned as a :class:`Violation` carrying the
schedule and its invariant report; callers hand those to
:mod:`repro.sim.shrink` for minimization.
"""

from __future__ import annotations

from random import Random
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import ENGINE_SITES, FaultAction, FaultPlan, FaultSite
from repro.sim.harness import SimHarness, SimRun, SimScenario
from repro.sim.schedule import FaultSchedule, SimTrigger

#: Engine-site action pool for random draws (CRASH included: the
#: recovery path is part of the searched surface).
_ENGINE_ACTIONS = (
    FaultAction.ERROR,
    FaultAction.DELAY,
    FaultAction.DROP,
    FaultAction.CRASH,
)

#: Step window used for WORKER_RPC / NET triggers, whose operation
#: counters live in worker processes / transports and are not probeable
#: in advance.  ``begin`` is armed RPC #1, steps count from #2, and the
#: cluster chaos matrix shows nth ∈ [2, 6] lands mid-query for the step
#: budgets the simulator uses.
_REMOTE_STEP_WINDOW = (2, 6)


class Violation:
    """One schedule that broke an invariant, with its evidence."""

    def __init__(self, run: SimRun) -> None:
        self.schedule = run.schedule
        self.run = run

    def describe(self) -> str:
        names = ", ".join(v.name for v in self.run.report.violations()) if self.run.report else "?"
        return f"{' + '.join(self.schedule.describe()) or '<empty>'} -> {names}"

    def __repr__(self) -> str:
        return f"Violation({self.describe()})"


class ExploreStats:
    """Search accounting for reports and the CLI."""

    def __init__(self) -> None:
        self.runs = 0
        self.random_runs = 0
        self.perturbed_runs = 0
        self.violations = 0
        self.wall_seconds = 0.0
        self.warped_seconds = 0.0

    def record(self, run: SimRun, perturbed: bool) -> None:
        self.runs += 1
        if perturbed:
            self.perturbed_runs += 1
        else:
            self.random_runs += 1
        if not run.ok():
            self.violations += 1
        self.wall_seconds += run.wall_seconds
        self.warped_seconds += run.warped_seconds

    def as_dict(self) -> Dict[str, float]:
        return {
            "runs": self.runs,
            "random_runs": self.random_runs,
            "perturbed_runs": self.perturbed_runs,
            "violations": self.violations,
            "wall_seconds": round(self.wall_seconds, 4),
            "warped_seconds": round(self.warped_seconds, 4),
        }


class ScheduleExplorer:
    """Budgeted random + perturbation search over fault schedules."""

    def __init__(
        self,
        harness: SimHarness,
        seed: int = 0,
        max_triggers: int = 3,
    ) -> None:
        self.harness = harness
        self.seed = seed
        self.max_triggers = max_triggers
        self.stats = ExploreStats()
        self._rng = Random(seed)
        self._yield_points: Optional[Dict[str, int]] = None

    # -- sampling ----------------------------------------------------------------

    def yield_points(self) -> Dict[str, int]:
        """Per-site operation counts from a fault-free probe run (cached)."""
        if self._yield_points is None:
            self._yield_points = self.harness.probe_yield_points()
        return self._yield_points

    def _engine_sites(self) -> List[Tuple[FaultSite, Optional[str], int]]:
        """(site, target, observed count) triples for engine-family draws."""
        out: List[Tuple[FaultSite, Optional[str], int]] = []
        for key, count in sorted(self.yield_points().items()):
            site_name, _, target = key.partition(":")
            try:
                site = FaultSite(site_name)
            except ValueError:
                continue
            if site in ENGINE_SITES and count > 0:
                out.append((site, target, count))
        if not out:
            # Degenerate scenario (no observed operations): fall back to
            # server ops on server 0 with a small window.
            out = [(FaultSite.SERVER_OP, "0", _REMOTE_STEP_WINDOW[1])]
        return out

    def _random_trigger(self) -> SimTrigger:
        families = self.harness.scenario.families()
        family = self._rng.choice(families)
        if family == "engine":
            site, target, count = self._rng.choice(self._engine_sites())
            step = self._rng.randint(1, max(count, 1))
            action = self._rng.choice(_ENGINE_ACTIONS)
            # Targeted engine sites (server_op/queue_*) fire for a
            # specific label; the schedule keeps the one we observed.
            return SimTrigger(site, step, action, target=target or None)
        lo, hi = _REMOTE_STEP_WINDOW
        step = self._rng.randint(lo, hi)
        shard = str(self._rng.randrange(self.harness.scenario.shards))
        if family == "process":
            action = self._rng.choice(list(FaultPlan.PROCESS_ACTIONS))
            return SimTrigger(FaultSite.WORKER_RPC, step, action, target=shard)
        action = self._rng.choice(list(FaultPlan.NET_ACTIONS))
        return SimTrigger(FaultSite.NET, step, action, target=shard)

    def random_schedule(self) -> FaultSchedule:
        count = self._rng.randint(1, self.max_triggers)
        triggers: List[SimTrigger] = []
        seen = set()
        for _ in range(count):
            trigger = self._random_trigger()
            if trigger.key() in seen:
                continue
            seen.add(trigger.key())
            triggers.append(trigger)
        return FaultSchedule(triggers)

    # -- perturbation ------------------------------------------------------------

    def perturbations(self, schedule: FaultSchedule) -> List[FaultSchedule]:
        """Shift each trigger's step by ±1/±2 (one trigger at a time).

        This is the systematic half of the search: once a schedule lands
        near a yield point, its neighbours in operation-index space are
        the timing races random search would need luck to hit.
        """
        out: List[FaultSchedule] = []
        for index, trigger in enumerate(schedule.triggers):
            for delta in (-2, -1, 1, 2):
                step = trigger.step + delta
                if step < 1:
                    continue
                shifted = SimTrigger(
                    trigger.site,
                    step,
                    trigger.action,
                    target=trigger.target,
                    delay_seconds=trigger.delay_seconds,
                    message=trigger.message,
                )
                triggers = list(schedule.triggers)
                triggers[index] = shifted
                candidate = FaultSchedule(triggers)
                if candidate != schedule:
                    out.append(candidate)
        return out

    # -- the search loop ---------------------------------------------------------

    def explore(self, budget: int = 40) -> List[Violation]:
        """Run up to ``budget`` simulated schedules; return all violations.

        Roughly the first half of the budget is random draws; every
        violating schedule (and the last clean random schedule, to keep
        the perturbation phase exercised even on healthy code) is then
        perturbed around its steps until the budget runs out.
        """
        violations: List[Violation] = []
        frontier: List[FaultSchedule] = []
        tried = set()
        random_budget = max(budget // 2, 1)

        def execute(schedule: FaultSchedule, perturbed: bool) -> Optional[SimRun]:
            if schedule in tried or not schedule.triggers:
                return None
            tried.add(schedule)
            run = self.harness.run(schedule)
            self.stats.record(run, perturbed)
            if not run.ok():
                violations.append(Violation(run))
                frontier.append(schedule)
            return run

        last_clean: Optional[FaultSchedule] = None
        while self.stats.runs < random_budget:
            schedule = self.random_schedule()
            run = execute(schedule, perturbed=False)
            if run is not None and run.ok():
                last_clean = schedule
        if not frontier and last_clean is not None:
            frontier.append(last_clean)

        for schedule in list(frontier):
            for candidate in self.perturbations(schedule):
                if self.stats.runs >= budget:
                    return violations
                execute(candidate, perturbed=True)
        return violations


def explore(
    scenario: SimScenario,
    budget: int = 40,
    seed: int = 0,
    harness: Optional[SimHarness] = None,
    max_triggers: int = 3,
) -> Tuple[List[Violation], ExploreStats]:
    """Convenience wrapper: search ``scenario`` and return (violations, stats)."""
    explorer = ScheduleExplorer(
        harness or SimHarness(scenario), seed=seed, max_triggers=max_triggers
    )
    found = explorer.explore(budget)
    return found, explorer.stats
