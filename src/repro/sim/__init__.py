"""Deterministic simulation: virtual time, fault schedules, shrinking.

The package splits across the layer contract (see
``docs/architecture.md``): :mod:`repro.sim.clock` is the *foundation*
seam every timed path in the repo routes through, while the harness
modules (:mod:`repro.sim.schedule`, :mod:`repro.sim.invariants`,
:mod:`repro.sim.harness`, :mod:`repro.sim.explore`,
:mod:`repro.sim.shrink`) sit at the *top*, driving engines and clusters
under timing-precise fault schedules.

Only the clock is re-exported here — this ``__init__`` executes whenever
a low-layer module imports ``repro.sim.clock``, so it must never import
the harness side (which would pull the whole engine stack into every
fault-injection import).  Reach the harness explicitly::

    from repro.sim.harness import SimHarness, SimScenario
    from repro.sim.schedule import FaultSchedule, SimTrigger
"""

from repro.sim.clock import (
    Clock,
    RealClock,
    VirtualClock,
    get_clock,
    set_clock,
    use_clock,
)

__all__ = [
    "Clock",
    "RealClock",
    "VirtualClock",
    "get_clock",
    "set_clock",
    "use_clock",
]
