"""Timing-precise fault schedules: ordered ``(site, step, action)`` triggers.

:class:`~repro.faults.plan.FaultPlan` generates *seeded-random* chaos —
good for coverage lotteries, useless for reproducing or minimizing one
specific failure.  A :class:`FaultSchedule` is the timing-precise
extension: an explicit ordered list of :class:`SimTrigger` entries, each
firing exactly once at the ``step``-th operation of one fault site.
Because every injection boundary in the repo already counts operations
per ``(site, target)`` deterministically, a schedule pins fault *timing*
to the run's own progress, independent of wall clock and (for the
single-threaded engines) of thread interleaving — the property the
explorer and shrinker in this package rely on.

Schedules serialize to JSON (``tests/fixtures/sim/`` is a corpus of
shrunk reproducers) and compile back onto the existing injection
machinery via :meth:`FaultSchedule.engine_plan`,
:meth:`FaultSchedule.process_plan` and :meth:`FaultSchedule.net_plan` —
one plan per fault boundary, so nothing about the injectors, workers or
transports needed to change to become schedulable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.errors import ReproError
from repro.faults.plan import ENGINE_SITES, FaultAction, FaultPlan, FaultRule, FaultSite

#: Serialization format version (bump on incompatible change).
SCHEDULE_VERSION = 1

#: Actions a trigger may carry, per fault site family.
_ENGINE_ACTIONS = (
    FaultAction.ERROR,
    FaultAction.DELAY,
    FaultAction.DROP,
    FaultAction.CRASH,
)
_PROCESS_ACTIONS = FaultPlan.PROCESS_ACTIONS
_NET_ACTIONS = FaultPlan.NET_ACTIONS

_ALLOWED: Dict[FaultSite, Sequence[FaultAction]] = {
    **{site: _ENGINE_ACTIONS for site in ENGINE_SITES},
    FaultSite.WORKER_RPC: _PROCESS_ACTIONS,
    FaultSite.NET: _NET_ACTIONS,
}


class ScheduleError(ReproError):
    """A malformed trigger or schedule payload."""


class SimTrigger:
    """One timing-precise fault: fire ``action`` at the ``step``-th
    operation of ``(site, target)``.

    ``step`` is 1-based and counts the same operation index the live
    injectors count (:class:`~repro.faults.inject.FaultInjector` for
    engine sites, the worker's RPC boundary for ``WORKER_RPC``, the
    transport's outbound-frame counter for ``NET``), so a trigger means
    exactly "the Nth time this site is reached".
    """

    __slots__ = ("site", "step", "action", "target", "delay_seconds", "message")

    def __init__(
        self,
        site: Union[FaultSite, str],
        step: int,
        action: Union[FaultAction, str],
        target: Optional[Union[int, str]] = None,
        delay_seconds: float = 0.001,
        message: str = "",
    ) -> None:
        self.site = site if isinstance(site, FaultSite) else FaultSite(site)
        self.action = action if isinstance(action, FaultAction) else FaultAction(action)
        if step < 1:
            raise ScheduleError(f"trigger step is 1-based, got {step}")
        if self.action not in _ALLOWED[self.site]:
            raise ScheduleError(
                f"action {self.action.value!r} is not valid at site "
                f"{self.site.value!r} (allowed: "
                f"{', '.join(a.value for a in _ALLOWED[self.site])})"
            )
        if self.site in (FaultSite.WORKER_RPC, FaultSite.NET) and target is None:
            raise ScheduleError(
                f"site {self.site.value!r} requires a shard-id target"
            )
        if delay_seconds < 0:
            raise ScheduleError(f"delay_seconds must be >= 0, got {delay_seconds}")
        self.step = step
        self.target = str(target) if target is not None else None
        self.delay_seconds = float(delay_seconds)
        self.message = message

    def family(self) -> str:
        """Which fault boundary executes this trigger."""
        if self.site is FaultSite.WORKER_RPC:
            return "process"
        if self.site is FaultSite.NET:
            return "net"
        return "engine"

    def rule(self) -> FaultRule:
        """Compile to a single-fire :class:`FaultRule` (``nth=step``)."""
        return FaultRule(
            site=self.site,
            action=self.action,
            target=self.target,
            nth=self.step,
            times=1,
            delay_seconds=self.delay_seconds,
            message=self.message or f"sim trigger {self.describe()}",
        )

    def as_dict(self) -> Dict[str, Any]:
        """Stable JSON form (keys sorted by the schedule serializer)."""
        return {
            "site": self.site.value,
            "step": self.step,
            "action": self.action.value,
            "target": self.target,
            "delay_seconds": self.delay_seconds,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimTrigger":
        try:
            return cls(
                site=str(payload["site"]),
                step=int(payload["step"]),
                action=str(payload["action"]),
                target=payload.get("target"),
                delay_seconds=float(payload.get("delay_seconds", 0.001)),
                message=str(payload.get("message", "")),
            )
        except (KeyError, ValueError) as exc:
            raise ScheduleError(f"malformed trigger payload: {exc}") from exc

    def describe(self) -> str:
        where = (
            self.site.value if self.target is None else f"{self.site.value}:{self.target}"
        )
        return f"{self.action.value}@{where}#{self.step}"

    def key(self) -> Any:
        """Dedup/sort identity (two equal-key triggers are redundant)."""
        return (self.site.value, self.target or "", self.step, self.action.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SimTrigger) and (
            self.key() == other.key()
            and self.delay_seconds == other.delay_seconds
        )

    def __hash__(self) -> int:
        return hash((self.key(), self.delay_seconds))

    def __repr__(self) -> str:
        return f"SimTrigger({self.describe()})"


class FaultSchedule:
    """An ordered, explicit fault schedule — pure data, JSON-serializable.

    Order is presentation only (each trigger pins its own firing step);
    the shrinker preserves it so minimized reproducers stay readable.
    """

    def __init__(self, triggers: Sequence[SimTrigger], name: str = "") -> None:
        self.triggers: List[SimTrigger] = list(triggers)
        self.name = name

    def __len__(self) -> int:
        return len(self.triggers)

    def __iter__(self) -> Iterator[SimTrigger]:
        return iter(self.triggers)

    def describe(self) -> List[str]:
        return [trigger.describe() for trigger in self.triggers]

    def families(self) -> List[str]:
        """The fault boundaries this schedule touches (sorted, unique)."""
        return sorted({trigger.family() for trigger in self.triggers})

    # -- compilation onto the existing fault boundaries ---------------------------

    def _plan_for(self, family: str) -> Optional[FaultPlan]:
        rules = [t.rule() for t in self.triggers if t.family() == family]
        if not rules:
            return None
        return FaultPlan(rules, seed=0)

    def engine_plan(self) -> Optional[FaultPlan]:
        """The in-engine plan (ERROR/DELAY/DROP/CRASH at engine sites)."""
        return self._plan_for("engine")

    def process_plan(self) -> Optional[FaultPlan]:
        """The worker-boundary plan (KILL/HANG/SLOW_PIPE at WORKER_RPC)."""
        return self._plan_for("process")

    def net_plan(self) -> Optional[FaultPlan]:
        """The transport plan (PARTITION/... at NET)."""
        return self._plan_for("net")

    # -- serialization -------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": SCHEDULE_VERSION,
            "name": self.name,
            "triggers": [trigger.as_dict() for trigger in self.triggers],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSchedule":
        version = int(payload.get("version", SCHEDULE_VERSION))
        if version != SCHEDULE_VERSION:
            raise ScheduleError(
                f"unsupported schedule version {version} "
                f"(this build reads version {SCHEDULE_VERSION})"
            )
        triggers = [SimTrigger.from_dict(entry) for entry in payload.get("triggers", ())]
        return cls(triggers, name=str(payload.get("name", "")))

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, stable indent) — byte-for-byte
        reproducible for fixture comparison."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScheduleError(f"schedule is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ScheduleError("schedule JSON must be an object")
        return cls.from_dict(payload)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultSchedule":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSchedule) and self.triggers == other.triggers

    def __hash__(self) -> int:
        return hash(tuple(self.triggers))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"FaultSchedule({len(self.triggers)} triggers{label})"
