"""Run fault schedules against real engines/clusters and judge the result.

:class:`SimHarness` is the execution half of the simulation layer: give
it a :class:`~repro.sim.schedule.FaultSchedule` and it runs the
scenario's workload under that schedule — on a :class:`VirtualClock` by
default, so injected delays, retry backoff and reconnect ladders warp
virtual time instead of burning wall seconds — then checks the full
invariant suite (:mod:`repro.sim.invariants`) against the fault-free
reference run.

Two scenario kinds:

- ``engine`` — a single-process run with in-engine faults.  A ``CRASH``
  trigger exercises the checkpoint/restore path exactly the way the
  recovery matrix does: snapshot during the faulted run, restore the
  last checkpoint into a fault-free run, and demand the uninterrupted
  answer back.
- ``cluster`` — a sharded :class:`~repro.cluster.Coordinator` query with
  worker (``WORKER_RPC``) and transport (``NET``) faults, the fast
  ladder the cluster chaos matrix uses, and checkpoint-shipping
  failover.

The harness is deliberately deterministic: same scenario + same
schedule ⇒ same invariant verdicts, which is what makes the explorer's
counterexamples shrinkable and the fixture corpus replayable.

``invariant_tap`` is a test-only hook: a callable invoked with the
:class:`SimRun` *after* execution but *before* the invariant checks.
Tests use it to plant a violation (e.g. corrupt the reported answers)
and prove the explorer finds it and the shrinker minimizes it; it has no
production purpose.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.base import TopKResult
from repro.core.engine import Engine
from repro.core.stats import monotonic_seconds
from repro.errors import EngineCrashError, ReproError
from repro.faults.plan import ENGINE_SITES, FaultAction, FaultPlan, FaultRule
from repro.faults.supervisor import RetryPolicy
from repro.recovery import CheckpointPolicy
from repro.sim.clock import Clock, RealClock, VirtualClock, use_clock
from repro.sim.invariants import (
    InvariantReport,
    Verdict,
    check_missing_shards_named,
    check_no_leaked_state,
    check_pending_bound_sound,
    check_reference_clean,
    check_single_outcome,
    check_topk_identity,
)
from repro.sim.schedule import FaultSchedule

#: In-engine recovery bounds for simulated runs — the same tight ladder
#: the chaos matrices use, so injected ERRORs retry in (virtual)
#: milliseconds.
SIM_RETRY = RetryPolicy(
    max_attempts=2, requeue_limit=1, base_delay=0.0001, max_delay=0.0005, jitter=0.0
)

#: Coordinator ladder for cluster scenarios (mirrors the chaos matrix's
#: FAST_LADDER; under a virtual clock the backoff warps anyway).
SIM_LADDER: Dict[str, Any] = dict(
    rpc_timeout_seconds=0.25,
    liveness_deadline_seconds=1.0,
    retry_policy=RetryPolicy(base_delay=0.01, max_delay=0.05, jitter=0.0),
)


class SimError(ReproError):
    """A scenario/schedule combination the harness cannot run."""


class SimScenario:
    """One reproducible workload for the simulator.

    Self-contained: the XMark database is described by (``xmark_items``,
    ``xmark_seed``) rather than passed in, so a scenario (and therefore a
    fixture in ``tests/fixtures/sim/``) pins everything a replay needs.
    """

    ENGINE = "engine"
    CLUSTER = "cluster"

    def __init__(
        self,
        kind: str = ENGINE,
        query: str = "//item[./description/parlist and ./mailbox/mail/text]",
        k: int = 4,
        algorithm: str = "whirlpool_s",
        xmark_items: int = 40,
        xmark_seed: int = 7,
        checkpoint_every: int = 4,
        shards: int = 2,
        step_operations: int = 30,
        transport: str = "pipe",
        fail_over: bool = True,
        max_failovers: int = 8,
    ) -> None:
        if kind not in (self.ENGINE, self.CLUSTER):
            raise SimError(f"unknown scenario kind {kind!r}")
        self.kind = kind
        self.query = query
        self.k = k
        self.algorithm = algorithm
        self.xmark_items = xmark_items
        self.xmark_seed = xmark_seed
        self.checkpoint_every = checkpoint_every
        self.shards = shards
        self.step_operations = step_operations
        self.transport = transport
        self.fail_over = fail_over
        self.max_failovers = max_failovers
        self._database: Optional[Any] = None
        self._engine: Optional[Engine] = None

    def families(self) -> List[str]:
        """Fault families this scenario can execute."""
        if self.kind == self.ENGINE:
            return ["engine"]
        return ["engine", "net", "process"]

    def database(self) -> Any:
        if self._database is None:
            from repro.xmark.generator import generate_database
            from repro.xmark.schema import XMarkConfig

            self._database = generate_database(
                XMarkConfig(items=self.xmark_items, seed=self.xmark_seed)
            )
        return self._database

    def engine(self) -> Engine:
        if self._engine is None:
            self._engine = Engine(self.database(), self.query)
        return self._engine

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "query": self.query,
            "k": self.k,
            "algorithm": self.algorithm,
            "xmark_items": self.xmark_items,
            "xmark_seed": self.xmark_seed,
            "checkpoint_every": self.checkpoint_every,
            "shards": self.shards,
            "step_operations": self.step_operations,
            "transport": self.transport,
            "fail_over": self.fail_over,
            "max_failovers": self.max_failovers,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimScenario":
        return cls(**payload)

    def __repr__(self) -> str:
        return (
            f"SimScenario({self.kind}, {self.algorithm}, k={self.k}, "
            f"items={self.xmark_items})"
        )


class SimRun:
    """Everything one simulated run produced (pre- and post-judgement)."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.result: Optional[TopKResult] = None
        self.crashed = False
        self.outcomes = 0
        self.leak: Optional[str] = None
        self.yield_points: Dict[str, int] = {}
        self.wall_seconds = 0.0
        self.warped_seconds = 0.0
        self.report: Optional[InvariantReport] = None

    def ok(self) -> bool:
        return self.report is not None and self.report.ok()

    def __repr__(self) -> str:
        verdict = "unchecked" if self.report is None else repr(self.report)
        return f"SimRun({self.schedule!r}, crashed={self.crashed}, {verdict})"


class SimHarness:
    """Execute schedules for one scenario and check the invariant suite."""

    def __init__(
        self,
        scenario: SimScenario,
        virtual: bool = True,
        invariant_tap: Optional[Callable[[SimRun], None]] = None,
    ) -> None:
        self.scenario = scenario
        self.virtual = virtual
        #: Test-only hook: mutate the :class:`SimRun` before judgement.
        self.invariant_tap = invariant_tap
        self._reference: Optional[TopKResult] = None

    # -- reference ---------------------------------------------------------------

    def reference(self) -> TopKResult:
        """The fault-free single-process run every schedule is judged against."""
        if self._reference is None:
            self._reference = self.scenario.engine().run(
                self.scenario.k, algorithm=self.scenario.algorithm
            )
        return self._reference

    def probe_yield_points(self) -> Dict[str, int]:
        """Observed operation counts per engine fault site — the step
        indexes the explorer perturbs.  Measured with an every-operation
        zero-delay DELAY plan so counters surface without changing the
        run's behaviour."""
        plan = FaultPlan(
            [
                FaultRule(site=site, action=FaultAction.DELAY, delay_seconds=0.0, every=1)
                for site in ENGINE_SITES
            ],
            seed=0,
        )
        result = self.scenario.engine().run(
            self.scenario.k,
            algorithm=self.scenario.algorithm,
            faults=plan,
            retry_policy=SIM_RETRY,
        )
        failure = result.failure
        if failure is None or failure.injection is None:
            return {}
        counts = failure.injection.get("site_counts", {})
        return {str(site): int(count) for site, count in counts.items()}

    # -- execution ---------------------------------------------------------------

    def run(self, schedule: FaultSchedule) -> SimRun:
        """Execute ``schedule`` and judge it; returns the full record."""
        unsupported = set(schedule.families()) - set(self.scenario.families())
        if unsupported:
            raise SimError(
                f"scenario kind {self.scenario.kind!r} cannot execute fault "
                f"families {sorted(unsupported)}"
            )
        clock: Clock = VirtualClock() if self.virtual else RealClock()
        run = SimRun(schedule)
        started = monotonic_seconds()
        with use_clock(clock):
            if self.scenario.kind == SimScenario.ENGINE:
                self._run_engine(run)
            else:
                self._run_cluster(run)
        run.wall_seconds = monotonic_seconds() - started
        run.warped_seconds = float(clock.stats()["warped_seconds"])
        if self.invariant_tap is not None:
            self.invariant_tap(run)
        run.report = self._judge(run)
        return run

    def _run_engine(self, run: SimRun) -> None:
        engine = self.scenario.engine()
        plan = run.schedule.engine_plan()
        snapshots: List[Dict[str, Any]] = []
        try:
            run.result = engine.run(
                self.scenario.k,
                algorithm=self.scenario.algorithm,
                faults=plan,
                retry_policy=SIM_RETRY,
                checkpoint_policy=CheckpointPolicy(
                    every_operations=self.scenario.checkpoint_every
                ),
                checkpoint_sink=snapshots.append,
            )
            run.outcomes += 1
        except EngineCrashError:
            run.crashed = True
            restore_from = snapshots[-1] if snapshots else None
            run.result = engine.run(
                self.scenario.k,
                algorithm=self.scenario.algorithm,
                restore_from=restore_from,
            )
            run.outcomes += 1
        run.yield_points = self._injection_counts(run.result)
        # Leaked-state probe: a fault-free rerun on the same engine must
        # reproduce the reference bit-for-bit.
        rerun = engine.run(self.scenario.k, algorithm=self.scenario.algorithm)
        if self._keys(rerun) != self._keys(self.reference()):
            run.leak = "fault-free rerun after the schedule diverged from baseline"

    def _run_cluster(self, run: SimRun) -> None:
        from repro.cluster import Coordinator
        from repro.recovery.store import MemoryRecoveryStore

        scenario = self.scenario
        with Coordinator(
            scenario.database(),
            shards=scenario.shards,
            step_operations=scenario.step_operations,
            transport=scenario.transport,
            recovery_store=MemoryRecoveryStore(),
            max_failovers=scenario.max_failovers,
            **SIM_LADDER,
        ) as coordinator:
            result = coordinator.run_query(
                scenario.query,
                scenario.k,
                algorithm=scenario.algorithm,
                engine_faults=run.schedule.engine_plan(),
                engine_retry_policy=SIM_RETRY,
                process_faults=run.schedule.process_plan(),
                net_faults=run.schedule.net_plan(),
                fail_over=scenario.fail_over,
            )
            run.result = result
            run.outcomes += 1
            health = coordinator.health()
            if health.get("active"):
                run.leak = "coordinator still reports an active query after the run"
            elif not result.degraded:
                if health["live_shards"] != scenario.shards:
                    run.leak = (
                        "undegraded run left "
                        f"{scenario.shards - health['live_shards']} shard(s) dead"
                    )
                else:
                    rerun = coordinator.run_query(
                        scenario.query, scenario.k, algorithm=scenario.algorithm
                    )
                    if self._keys(rerun) != self._keys(self.reference()):
                        run.leak = (
                            "fault-free rerun after the schedule diverged "
                            "from baseline"
                        )

    # -- judgement ---------------------------------------------------------------

    def _judge(self, run: SimRun) -> InvariantReport:
        reference = self.reference()
        result = run.result
        verdicts: List[Verdict] = [check_reference_clean(reference)]
        if result is None:
            verdicts.append(
                Verdict("topk_identity", False, "run produced no result at all")
            )
        else:
            verdicts.append(check_topk_identity(reference, result))
            verdicts.append(check_pending_bound_sound(reference, result))
        verdicts.append(check_single_outcome(run.outcomes))
        verdicts.append(check_no_leaked_state(run.leak))
        if self.scenario.kind == SimScenario.CLUSTER and result is not None:
            verdicts.append(
                check_missing_shards_named(
                    result.degraded,
                    getattr(result, "missing_shards", []),
                    self.scenario.shards,
                )
            )
        return InvariantReport(verdicts)

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _keys(result: TopKResult) -> List[Any]:
        return [
            (tuple(answer.root_node.dewey), repr(answer.score))
            for answer in result.answers
        ]

    @staticmethod
    def _injection_counts(result: TopKResult) -> Dict[str, int]:
        failure = result.failure
        if failure is None or failure.injection is None:
            return {}
        counts = failure.injection.get("site_counts", {})
        return {str(site): int(count) for site, count in counts.items()}
