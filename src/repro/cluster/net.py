"""Shard transports: how the coordinator reaches a worker process.

PR 7 hard-wired the coordinator to stdin/stdout pipes.  This module
extracts that link behind a :class:`Transport` so the protocol layer
(RPC ids, retry ladders, failover, checkpoint shipping) is transport
agnostic, and adds the first *networked* implementation:

- :class:`PipeTransport` — the PR 7 behavior: worker subprocess, frames
  over its stdin/stdout.  A broken pipe is unrecoverable (pipes cannot
  redial), so every connection loss escalates straight to failover.
- :class:`SocketTransport` — worker subprocess that dials back to a
  coordinator-owned loopback TCP listener and authenticates with a
  per-spawn session token.  A dropped connection is *not* a dead
  worker: the worker redials with exponential backoff, the coordinator
  re-accepts, and the in-flight RPC is replayed idempotently (the
  worker's reply cache answers duplicates without re-executing).  A
  stale worker — one superseded by failover — presents an old token,
  is refused at the handshake, and exits instead of split-braining the
  shard.

Both transports sequence outbound frames per connection (duplicate
delivery is dropped by the receiver's ``seq`` check) and carry the
CRC-checked framing of :mod:`repro.cluster.protocol`, so a flipped bit
anywhere on the link is detected, condemns the connection, and rides
the same reconnect-or-failover path as a partition.

Network fault injection lives here too: :class:`NetFaultArm` evaluates
seeded :attr:`~repro.faults.plan.FaultSite.NET` rules on the
coordinator-side send path — PARTITION severs the link, CORRUPT_FRAME
flips a bit in flight, DUP_FRAME delivers twice, RECONNECT_STORM severs
on several consecutive sends — which is what the transport half of the
chaos matrix in ``tests/test_cluster_chaos.py`` sweeps.

Locking discipline: transports guard their mutable attributes with
short ``self._lock`` sections (they are watched by WPL001 and the
runtime race detector) and never hold a lock across pipe or socket I/O
— the graph analyzer's WPLG02 blocking-under-lock rule applies to this
module with no baseline entries.
"""

from __future__ import annotations

import os
import random
import select
import socket
import subprocess
import sys
import threading
from typing import Any, Dict, List, Optional

from repro.cluster.protocol import FrameReader, encode_frame
from repro.core.stats import monotonic_seconds
from repro.errors import (
    ClusterError,
    ConnectionLostError,
    ProtocolError,
    WorkerLostError,
)
from repro.faults.plan import FaultAction, FaultPlan, FaultRule, FaultSite

#: Transport kinds accepted by :func:`create_transport` (and the CLI's
#: ``--transport`` flag).
TRANSPORTS = ("pipe", "socket")

#: Total link severs a RECONNECT_STORM rule performs (the firing send
#: plus this many minus one follow-ups), so one rule exercises several
#: rungs of the reconnect backoff ladder in quick succession.
RECONNECT_STORM_DROPS = 3


def corrupt_frame_bytes(data: bytes) -> bytes:
    """Flip one bit in a frame's final byte — enough to fail the CRC
    without disturbing the header, mimicking payload corruption in
    flight."""
    if not data:
        return data
    return data[:-1] + bytes([data[-1] ^ 0x01])


class NetFaultArm:
    """Seeded trigger evaluation for NET rules on one shard's link.

    The counting/trigger semantics mirror
    :class:`repro.cluster.worker.ProcessFaultArm` — per-rule fire caps,
    probability draws from a seeded RNG — but the counter is *this
    shard's outbound frames*, so each shard's schedule is deterministic
    regardless of how rounds interleave across shards.  Unlike process
    fault plans, a NET arm stays armed across failovers: the network
    does not get healthier because a worker was replaced (rule ``times``
    caps keep every schedule finite).
    """

    def __init__(self, plan: FaultPlan, shard_id: int) -> None:
        self.plan = plan
        self.target = str(shard_id)
        self._rng = random.Random(plan.seed ^ (shard_id + 1))
        self._count = 0
        self._fires: Dict[int, int] = {}

    def arm(self) -> Optional[FaultRule]:
        """Advance the send counter; return the rule firing, if any."""
        self._count += 1
        for index, rule in enumerate(self.plan.rules):
            if not rule.matches(FaultSite.NET, self.target):
                continue
            fired = self._fires.get(index, 0)
            if rule.times is not None and fired >= rule.times:
                continue
            if rule.triggers(self._count, self._rng):
                self._fires[index] = fired + 1
                return rule
        return None


def _worker_env() -> Dict[str, str]:
    """Subprocess environment with this checkout's ``src`` on
    ``PYTHONPATH`` so workers import the same tree even without an
    installed dist."""
    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing else src_root + os.pathsep + existing
    return env


class Transport:
    """One shard's worker process plus the framed link to it.

    Subclasses own process lifecycle (:meth:`spawn` / :meth:`kill`) and
    raw byte movement (:meth:`_write_bytes` / :meth:`recv`); this base
    owns what both share — outbound sequence numbering and the NET
    fault boundary on every send.
    """

    kind: str = "abstract"
    supports_reconnect: bool = False

    def __init__(self, shard_id: int, python_executable: Optional[str] = None) -> None:
        self.shard_id = shard_id
        self.python_executable = python_executable or sys.executable
        self._lock = threading.Lock()
        self._proc: Optional[subprocess.Popen] = None
        self._out_seq = 0
        self._net_arm: Optional[NetFaultArm] = None
        self._storm_remaining = 0

    # -- lifecycle (subclass responsibility) -------------------------------------

    def spawn(self) -> None:
        """Start (or restart) the worker and establish the link; raises
        :class:`~repro.errors.WorkerLostError` when the worker never
        comes up."""
        raise NotImplementedError

    def kill(self) -> None:
        """Tear down the worker process and the link (idempotent)."""
        raise NotImplementedError

    def close(self) -> None:
        """Final teardown; also releases listener resources."""
        self.kill()

    def alive(self) -> bool:
        proc = self._proc
        return proc is not None and proc.poll() is None

    def connected(self) -> bool:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """One health row for this link."""
        return {"kind": self.kind, "connected": self.connected()}

    # -- fault boundary -----------------------------------------------------------

    def arm_net_faults(self, arm: Optional[NetFaultArm]) -> None:
        """Install (or clear) the per-query NET fault schedule."""
        with self._lock:
            self._net_arm = arm
            self._storm_remaining = 0

    # -- frames -------------------------------------------------------------------

    def send(self, payload: Dict[str, Any]) -> None:
        """Encode, sequence, and deliver one frame through the NET fault
        boundary; raises :class:`~repro.errors.ConnectionLostError` when
        the link is (or just became) unusable."""
        with self._lock:
            self._out_seq += 1
            seq = self._out_seq
            arm = self._net_arm
            storm = self._storm_remaining > 0
            if storm:
                self._storm_remaining -= 1
        data = encode_frame(payload, seq=seq)
        duplicate = False
        if not storm and arm is not None:
            rule = arm.arm()
            if rule is not None:
                if rule.action is FaultAction.CORRUPT_FRAME:
                    data = corrupt_frame_bytes(data)
                elif rule.action is FaultAction.DUP_FRAME:
                    duplicate = True
                elif rule.action is FaultAction.PARTITION:
                    storm = True
                elif rule.action is FaultAction.RECONNECT_STORM:
                    with self._lock:
                        self._storm_remaining = RECONNECT_STORM_DROPS - 1
                    storm = True
        if storm:
            self._sever()
            raise ConnectionLostError(self.shard_id, "partition")
        self._write_bytes(data)
        if duplicate:
            self._write_bytes(data)

    def recv(self, deadline_at: Optional[float]) -> Dict[str, Any]:
        """One inbound frame; raises :class:`FrameTimeout` past the
        deadline, the typed :class:`~repro.errors.ProtocolError` family
        on corruption, :class:`~repro.errors.ConnectionLostError` on
        EOF/reset."""
        raise NotImplementedError

    def reconnect(self, give_up_at: float) -> bool:
        """Re-establish the link to the *same* worker session, waiting
        until ``give_up_at`` at most.  Pipe links cannot; socket links
        accept the worker's redial."""
        return False

    # -- subclass plumbing --------------------------------------------------------

    def _write_bytes(self, data: bytes) -> None:
        raise NotImplementedError

    def _sever(self) -> None:
        """Drop the link (PARTITION semantics) without killing the
        process."""
        raise NotImplementedError

    def _reap(self, timeout: float = 5.0) -> None:
        """Kill and wait out the worker process, if any."""
        proc = self._proc
        if proc is None:
            return
        if proc.poll() is None:
            proc.kill()
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - SIGKILL pending
            pass
        with self._lock:
            self._proc = None


class PipeTransport(Transport):
    """Frames over the worker's stdin/stdout (the PR 7 link).

    Single-host only, and severing is terminal: a pipe cannot be
    redialed, so PARTITION/CORRUPT_FRAME faults (and real broken pipes)
    surface as a lost worker and ride the failover ladder.
    """

    kind = "pipe"
    supports_reconnect = False

    def __init__(self, shard_id: int, python_executable: Optional[str] = None) -> None:
        super().__init__(shard_id, python_executable)
        self._reader: Optional[FrameReader] = None

    def spawn(self) -> None:
        proc = subprocess.Popen(
            [
                self.python_executable,
                "-m",
                "repro.cluster.worker",
                "--shard",
                str(self.shard_id),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # inherit: worker tracebacks surface in our stderr
            env=_worker_env(),
        )
        assert proc.stdout is not None
        reader = FrameReader(proc.stdout.fileno())
        with self._lock:
            self._proc = proc
            self._reader = reader
            self._out_seq = 0

    def kill(self) -> None:
        with self._lock:
            proc = self._proc
            self._reader = None
        if proc is None:
            return
        if proc.poll() is None:
            proc.kill()
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - SIGKILL pending
            pass
        # close() flushes, and a flush into a SIGKILLed worker's pipe
        # raises BrokenPipeError — the bytes are moot, the pipe is gone.
        for stream in (proc.stdin, proc.stdout):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass
        with self._lock:
            self._proc = None

    def connected(self) -> bool:
        return self._reader is not None and self.alive()

    def recv(self, deadline_at: Optional[float]) -> Dict[str, Any]:
        reader = self._reader
        if reader is None:
            raise ConnectionLostError(self.shard_id, "not_connected")
        try:
            reply = reader.read(deadline_at)
        except ProtocolError:
            self._sever()
            raise
        if reply is None:
            self._sever()
            raise ConnectionLostError(self.shard_id, "eof")
        return reply

    def _write_bytes(self, data: bytes) -> None:
        proc = self._proc
        stream = proc.stdin if proc is not None else None
        if stream is None:
            raise ConnectionLostError(self.shard_id, "not_connected")
        try:
            stream.write(data)
            stream.flush()
        except (BrokenPipeError, OSError, ValueError) as exc:
            raise ConnectionLostError(self.shard_id, "eof") from exc

    def _sever(self) -> None:
        with self._lock:
            proc = self._proc
            self._reader = None
        if proc is None:
            return
        for stream in (proc.stdin, proc.stdout):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass


class SocketTransport(Transport):
    """Frames over loopback TCP with token-authenticated redial.

    The coordinator owns one listening socket per shard (bound once,
    port stable across respawns).  ``spawn`` mints a fresh session
    token, passes it to the worker on its command line, and waits for
    the worker to dial back and present it; ``reconnect`` re-runs only
    the accept/handshake half against the *same* token, which is what
    distinguishes a partitioned worker (session intact, state resident)
    from a replaced one (old token refused, process exits).
    """

    kind = "socket"
    supports_reconnect = True

    def __init__(
        self,
        shard_id: int,
        python_executable: Optional[str] = None,
        connect_timeout_seconds: float = 10.0,
        worker_reconnect_window_seconds: float = 30.0,
    ) -> None:
        super().__init__(shard_id, python_executable)
        if connect_timeout_seconds <= 0:
            raise ClusterError("connect timeout must be positive")
        self.connect_timeout_seconds = connect_timeout_seconds
        self.worker_reconnect_window_seconds = worker_reconnect_window_seconds
        self._listener: Optional[socket.socket] = None
        self._port = 0
        self._conn: Optional[socket.socket] = None
        self._reader: Optional[FrameReader] = None
        self._token = ""

    # -- lifecycle ----------------------------------------------------------------

    def _ensure_listener(self) -> socket.socket:
        listener = self._listener
        if listener is not None:
            return listener
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        sock.listen(8)
        port = sock.getsockname()[1]
        with self._lock:
            self._listener = sock
            self._port = port
        return sock

    def spawn(self) -> None:
        self._ensure_listener()
        token = os.urandom(8).hex()
        with self._lock:
            self._token = token
        proc = subprocess.Popen(
            [
                self.python_executable,
                "-m",
                "repro.cluster.worker",
                "--shard",
                str(self.shard_id),
                "--transport",
                "socket",
                "--connect",
                f"127.0.0.1:{self._port}",
                "--token",
                token,
                "--reconnect-window",
                str(self.worker_reconnect_window_seconds),
            ],
            stdin=subprocess.DEVNULL,
            stdout=None,
            stderr=None,  # inherit both: tracebacks surface in our stderr
            env=_worker_env(),
        )
        with self._lock:
            self._proc = proc
            self._conn = None
            self._reader = None
        if not self._accept(monotonic_seconds() + self.connect_timeout_seconds):
            self.kill()
            raise WorkerLostError(self.shard_id, "spawn_failed")

    def _accept(self, give_up_at: float) -> bool:
        """Accept-and-handshake loop: take the next dial-in that
        presents the current session token; refuse (and keep waiting
        past) anything else until ``give_up_at``."""
        listener = self._listener
        if listener is None:
            return False
        while True:
            timeout = give_up_at - monotonic_seconds()
            if timeout <= 0:
                return False
            try:
                readable, _, _ = select.select([listener.fileno()], [], [], timeout)
            except OSError:  # listener closed under us (teardown race)
                return False
            if not readable:
                return False
            try:
                conn, _ = listener.accept()
            except OSError:
                return False
            reader = FrameReader(conn.fileno())
            try:
                hello = reader.read(give_up_at)
            except ClusterError:
                conn.close()
                continue
            with self._lock:
                token = self._token
            accepted = (
                hello is not None
                and hello.get("op") == "hello"
                and hello.get("shard") == self.shard_id
                and hello.get("token") == token
            )
            try:
                conn.sendall(encode_frame({"op": "hello", "ok": accepted}, seq=1))
            except OSError:
                conn.close()
                continue
            if not accepted:
                # A stale session (pre-failover worker) or an impostor:
                # refused, and the refusal tells the worker to exit.
                conn.close()
                continue
            old = self._conn
            with self._lock:
                self._conn = conn
                self._reader = reader
                self._out_seq = 1  # the hello ack consumed seq 1
            if old is not None:
                try:
                    old.close()
                except OSError:
                    pass
            return True

    def kill(self) -> None:
        self._sever()
        self._reap()

    def close(self) -> None:
        self.kill()
        with self._lock:
            listener = self._listener
            self._listener = None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    def connected(self) -> bool:
        return self._conn is not None

    # -- frames -------------------------------------------------------------------

    def recv(self, deadline_at: Optional[float]) -> Dict[str, Any]:
        reader = self._reader
        if reader is None:
            raise ConnectionLostError(self.shard_id, "not_connected")
        try:
            reply = reader.read(deadline_at)
        except ProtocolError:
            self._sever()
            raise
        if reply is None:
            self._sever()
            raise ConnectionLostError(self.shard_id, "eof")
        return reply

    def reconnect(self, give_up_at: float) -> bool:
        self._sever()
        return self._accept(give_up_at)

    def _write_bytes(self, data: bytes) -> None:
        conn = self._conn
        if conn is None:
            raise ConnectionLostError(self.shard_id, "not_connected")
        try:
            conn.sendall(data)
        except OSError as exc:
            self._sever()
            raise ConnectionLostError(self.shard_id, "reset") from exc

    def _sever(self) -> None:
        with self._lock:
            conn = self._conn
            self._conn = None
            self._reader = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def describe(self) -> Dict[str, Any]:
        row = super().describe()
        row["port"] = self._port
        return row


def create_transport(
    kind: str,
    shard_id: int,
    python_executable: Optional[str] = None,
    connect_timeout_seconds: float = 10.0,
    worker_reconnect_window_seconds: float = 30.0,
) -> Transport:
    """Build one shard's transport by name (``pipe`` or ``socket``)."""
    if kind == "pipe":
        return PipeTransport(shard_id, python_executable)
    if kind == "socket":
        return SocketTransport(
            shard_id,
            python_executable,
            connect_timeout_seconds=connect_timeout_seconds,
            worker_reconnect_window_seconds=worker_reconnect_window_seconds,
        )
    raise ClusterError(
        f"unknown transport {kind!r}; expected one of {', '.join(TRANSPORTS)}"
    )


__all__: List[str] = [
    "TRANSPORTS",
    "RECONNECT_STORM_DROPS",
    "NetFaultArm",
    "Transport",
    "PipeTransport",
    "SocketTransport",
    "create_transport",
    "corrupt_frame_bytes",
]
