"""Shard worker: one subprocess, one partition, a full engine.

Launched by the coordinator as ``python -m repro.cluster.worker --shard
<id>`` and spoken to with the CRC-checked, sequence-numbered frames of
:mod:`repro.cluster.protocol` over one of two transports (stderr
carries tracebacks and is surfaced by the coordinator on failure):

- **pipe** (default): frames over stdin/stdout.  EOF or a corrupt
  frame ends the process — a pipe cannot be redialed, so the
  coordinator's failover ladder is the only recovery.
- **socket** (``--transport socket --connect host:port --token T``):
  the worker dials the coordinator's listener, authenticates with its
  per-spawn session token, and serves frames over TCP.  A dropped
  connection does *not* end the session: the worker redials with
  exponential backoff for ``--reconnect-window`` seconds, and a reply
  cache keyed by RPC id answers replayed requests idempotently — a
  step whose reply was lost in the partition is never re-executed.  A
  *refused* handshake means the coordinator failed this session over
  to a fresh worker; the stale worker exits instead of split-braining.

The worker is a plain request loop — *all* policy (retries, liveness,
failover, merging) lives in the coordinator; the worker's one
invariant is that its resident snapshot only ever advances past a step
that completed.

RPCs
----
``init``
    Parse the shard's documents (shipped as serialized XML) into a
    fresh :class:`~repro.xmldb.model.Database`, and arm the optional
    process-level fault plan.
``begin``
    Bind a query: build the :class:`~repro.core.engine.Engine` facade
    with the coordinator-shipped **global** score contributions (never
    shard-local idf — Dewey remapping aside, shard scores must be
    bit-identical to a single-process run), optionally seed the
    resident snapshot from a failed-over checkpoint.
``step``
    Advance the engine by an operation budget: run with
    ``max_operations = resident ops + budget`` restoring from the
    resident snapshot; the budget-exit checkpoint (taken by every
    engine when a checkpoint policy is attached) becomes the new
    resident snapshot and ships back in the reply, giving the
    coordinator its failover point.  A finished run replies ``done``
    with the final answers.
``ping`` / ``end`` / ``shutdown``
    Liveness probe / unbind the query / exit the loop.

Process-level faults (:attr:`repro.faults.plan.FaultPlan.PROCESS_ACTIONS`)
are executed *here*, at the RPC boundary: ``KILL`` SIGKILLs the process
before any reply, ``HANG`` sleeps far past the liveness deadline before
processing, ``SLOW_PIPE`` delays the reply.  ``ping`` never arms a rule:
probe timing depends on coordinator-side waits, and arming it would
make the seeded per-RPC schedules nondeterministic.
"""

from __future__ import annotations

import argparse
import os
import random
import signal
import socket
import sys
from typing import Any, BinaryIO, Callable, Dict, List, Optional, Tuple

from repro.cluster.protocol import encode_frame, read_frame_ex
from repro.core.engine import Engine
from repro.core.base import TopKResult
from repro.core.stats import monotonic_seconds
from repro.errors import ClusterError, EngineCrashError, ProtocolError, ReproError
from repro.faults.plan import FaultAction, FaultPlan, FaultRule, FaultSite
from repro.faults.supervisor import RetryPolicy
from repro.recovery.codec import encode_match
from repro.recovery.policy import CheckpointPolicy
from repro.scoring.model import ScoreModel
import repro.sim.clock as simclock
from repro.sim.clock import RealClock, set_clock
from repro.xmldb.dewey import dewey_str
from repro.xmldb.model import Database
from repro.xmldb.parser import parse_forest


class ProcessFaultArm:
    """Seeded trigger evaluation for WORKER_RPC rules.

    The counting/trigger semantics mirror
    :meth:`repro.faults.inject.FaultInjector._arm` — per-(site, target)
    operation counters, per-rule fire caps, probability draws from the
    plan's seeded RNG — but the armed *actions* act on the process, so
    execution lives in the worker loop, not in the injector.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._count = 0
        self._fires: Dict[int, int] = {}

    def arm(self, target: str) -> Optional[FaultRule]:
        """Advance the RPC counter; return the rule firing, if any."""
        self._count += 1
        for index, rule in enumerate(self.plan.rules):
            if not rule.matches(FaultSite.WORKER_RPC, target):
                continue
            fired = self._fires.get(index, 0)
            if rule.times is not None and fired >= rule.times:
                continue
            if rule.triggers(self._count, self._rng):
                self._fires[index] = fired + 1
                return rule
        return None


class FrameChannel:
    """One connection's frame plumbing on the worker side: blocking
    reads with duplicate suppression, sequence-numbered writes.

    Per-connection by design — a reconnect builds a fresh channel (both
    peers restart their sequence spaces with the new connection) while
    the session-level state (engine, snapshot, reply cache) stays on
    the :class:`ShardWorker`.
    """

    def __init__(self, rx: BinaryIO, send_bytes: Callable[[bytes], None]) -> None:
        self._rx = rx
        self._send_bytes = send_bytes
        self._last_seq = 0
        self._out_seq = 0

    def read(self) -> Optional[Dict[str, Any]]:
        """Next non-duplicate message; ``None`` on clean EOF."""
        while True:
            got = read_frame_ex(self._rx)
            if got is None:
                return None
            payload, seq = got
            if seq and seq <= self._last_seq:
                continue  # duplicated delivery: drop, keep reading
            if seq:
                self._last_seq = seq
            return payload

    def write(self, payload: Dict[str, Any]) -> None:
        self._out_seq += 1
        self._send_bytes(encode_frame(payload, seq=self._out_seq))


class ShardWorker:
    """Request-loop state machine for one shard process."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.database: Optional[Database] = None
        self.engine: Optional[Engine] = None
        self.k = 0
        self.algorithm = "whirlpool_s"
        self.routing = "min_alive"
        self.step_default = 200
        self.engine_faults: Optional[FaultPlan] = None
        self.engine_retry: Optional[RetryPolicy] = None
        self.snapshot: Optional[Dict[str, Any]] = None
        self.resident_ops = 0
        self.lost_bound = 0.0
        self.process_faults: Optional[ProcessFaultArm] = None
        self.reply_delay = 0.0
        # Idempotent-replay cache: the last RPC id answered and its
        # reply.  After a reconnect the coordinator resends the in-flight
        # request with the *same* id; if this worker already executed it
        # (the partition ate the reply, not the request), the cached
        # reply is returned without re-running the step — which is what
        # keeps "engine advanced past step N" exactly-once.
        self.last_reply_id: Optional[Any] = None
        self.last_reply: Optional[Dict[str, Any]] = None

    # -- fault boundary ----------------------------------------------------------

    def intercept(self, op: str) -> None:
        """Run the process-fault boundary for one inbound RPC."""
        self.reply_delay = 0.0
        if self.process_faults is None or op == "ping":
            return
        rule = self.process_faults.arm(str(self.shard_id))
        if rule is None:
            return
        if rule.action is FaultAction.KILL:
            sys.stderr.write(f"shard {self.shard_id}: injected SIGKILL\n")
            sys.stderr.flush()
            os.kill(os.getpid(), signal.SIGKILL)
        elif rule.action is FaultAction.HANG:
            simclock.sleep(rule.delay_seconds)
        elif rule.action is FaultAction.SLOW_PIPE:
            self.reply_delay = rule.delay_seconds

    # -- RPC handlers ------------------------------------------------------------

    def handle(self, message: Dict[str, Any]) -> Tuple[Optional[Dict[str, Any]], bool]:
        """Dispatch one frame → (reply or None, exit-loop flag)."""
        op = str(message.get("op", ""))
        self.intercept(op)
        handler = getattr(self, f"_op_{op}", None)
        base = {"id": message.get("id"), "op": op}
        if handler is None:
            return {**base, "ok": False, "error": f"unknown op {op!r}"}, False
        try:
            reply, should_exit = handler(message)
        except ReproError as exc:
            reply, should_exit = (
                {"ok": False, "error": str(exc), "kind": type(exc).__name__},
                False,
            )
        return {**base, **reply}, should_exit

    def _op_init(self, message: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        self.database = parse_forest(message.get("documents", []))
        plan_payload = message.get("process_faults")
        if plan_payload is not None:
            self.process_faults = ProcessFaultArm(FaultPlan.from_dict(plan_payload))
        return (
            {
                "ok": True,
                "documents": len(self.database.documents),
                "nodes": self.database.node_count(),
            },
            False,
        )

    def _op_begin(self, message: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        if self.database is None:
            return {"ok": False, "error": "begin before init"}, False
        self.k = int(message["k"])
        self.algorithm = str(message.get("algorithm", "whirlpool_s"))
        self.routing = str(message.get("routing", "min_alive"))
        self.step_default = int(message.get("step_operations", 200))
        self.engine = Engine(
            self.database,
            str(message["query"]),
            relaxed=bool(message.get("relaxed", True)),
            score_model=ScoreModel.from_contributions(message["contributions"]),
            # Shipped by the coordinator so every shard builds its index
            # on the same backend; absent (old coordinator) falls back to
            # this worker's own environment/default.
            index_backend=message.get("index_backend"),
        )
        faults_payload = message.get("engine_faults")
        self.engine_faults = (
            FaultPlan.from_dict(faults_payload) if faults_payload is not None else None
        )
        retry_payload = message.get("engine_retry")
        self.engine_retry = (
            RetryPolicy.from_dict(retry_payload) if retry_payload is not None else None
        )
        self.snapshot = message.get("restore")
        self.resident_ops = (
            int(self.snapshot["operations"]) if self.snapshot is not None else 0
        )
        self.lost_bound = 0.0
        return {"ok": True}, False

    def _op_step(self, message: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        if self.engine is None:
            return {"ok": False, "error": "step before begin"}, False
        budget = int(message.get("operations", self.step_default))
        fault_free = bool(message.get("fault_free", False))
        captured: List[Dict[str, Any]] = []
        try:
            result = self.engine.run(
                self.k,
                algorithm=self.algorithm,
                routing=self.routing,
                max_operations=self.resident_ops + budget,
                faults=None if fault_free else self.engine_faults,
                retry_policy=self.engine_retry,
                checkpoint_policy=CheckpointPolicy(every_operations=max(budget, 1)),
                checkpoint_sink=captured.append,
                restore_from=self.snapshot,
            )
        except EngineCrashError as exc:
            # The resident snapshot did not advance; the coordinator
            # retries this step (fault-free, mirroring the service's
            # recovery contract: recovered runs re-execute clean).
            return (
                {
                    "ok": False,
                    "error": str(exc),
                    "kind": "EngineCrashError",
                    "resumable": True,
                },
                False,
            )
        # ``degraded`` conflates two very different states (see
        # EngineBase.make_result): budget exit with queued leftovers —
        # *resumable*, the final checkpoint holds them — and terminal
        # loss (abandoned or injector-dropped matches) in a run that
        # otherwise finished.  Only the former continues stepping; the
        # latter's bound is remembered across steps (each run rebuilds
        # its injector, so earlier drops would silently vanish from
        # later reports) and keeps the final report degraded-but-done.
        if result.failure is not None:
            for failed in result.failure.failed_matches:
                self.lost_bound = max(self.lost_bound, failed.upper_bound)
            for drop in result.failure.dropped:
                self.lost_bound = max(
                    self.lost_bound, float(drop.get("upper_bound", 0.0))
                )
        hit_budget = (
            result.stats.server_operations >= self.resident_ops + budget
        )
        done = not (result.degraded and hit_budget and captured)
        if not done:
            self.snapshot = captured[-1]
            self.resident_ops = int(self.snapshot["operations"])
        return {**{"ok": True, "done": done}, **self._report(result, done)}, False

    def _report(self, result: TopKResult, done: bool) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "answers": [
                {
                    "root": dewey_str(answer.root_node.dewey),
                    "score": answer.score,
                    "match": encode_match(answer.match),
                }
                for answer in result.answers
            ],
            "pending_bound": max(result.pending_bound, self.lost_bound),
            "degraded": self.lost_bound > 0.0 or not done,
            "operations": result.stats.server_operations,
            "stats": result.stats.as_dict(),
            "checkpoint": None if done else self.snapshot,
        }
        return payload

    def _op_ping(self, message: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        return (
            {"ok": True, "shard": self.shard_id, "operations": self.resident_ops},
            False,
        )

    def _op_end(self, message: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        self.engine = None
        self.engine_faults = None
        self.engine_retry = None
        self.snapshot = None
        self.resident_ops = 0
        self.lost_bound = 0.0
        return {"ok": True}, False

    def _op_shutdown(self, message: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        return {"ok": True}, True


def serve(worker: ShardWorker, channel: FrameChannel) -> str:
    """Drain one connection; returns ``"shutdown"`` (clean exit asked)
    or ``"lost"`` (EOF, reset, or condemned-by-corruption — the socket
    main loop redials, the pipe main loop exits into failover)."""
    while True:
        try:
            message = channel.read()
        except ProtocolError:
            return "lost"  # corruption condemns the connection
        except OSError:
            return "lost"
        if message is None:
            return "lost"
        rpc_id = message.get("id")
        try:
            if rpc_id is not None and rpc_id == worker.last_reply_id:
                # Replayed request: already executed, reply was lost in
                # transit.  Answer from cache, never re-execute.
                assert worker.last_reply is not None
                channel.write(worker.last_reply)
                continue
            reply, should_exit = worker.handle(message)
            if worker.reply_delay > 0:
                simclock.sleep(worker.reply_delay)
            if reply is not None:
                if rpc_id is not None:
                    worker.last_reply_id = rpc_id
                    worker.last_reply = reply
                channel.write(reply)
            if should_exit:
                return "shutdown"
        except (BrokenPipeError, OSError):
            return "lost"  # reply undeliverable; it is cached for replay


def run_pipe(worker: ShardWorker) -> int:
    """Pipe mode: one connection, no second chances."""
    stdout = sys.stdout.buffer
    channel = FrameChannel(sys.stdin.buffer, lambda data: _write_flush(stdout, data))
    serve(worker, channel)
    return 0


def _write_flush(stream: BinaryIO, data: bytes) -> None:
    stream.write(data)
    stream.flush()


def run_socket(
    worker: ShardWorker,
    host: str,
    port: int,
    token: str,
    reconnect_window_seconds: float,
) -> int:
    """Socket mode: dial, authenticate, serve; redial with exponential
    backoff when the link drops, for at most the reconnect window per
    outage.  Exits 0 when told to shut down or when the coordinator
    refuses the token (this session was failed over — a stale worker
    must die quietly, not contest the shard)."""
    give_up_at = monotonic_seconds() + reconnect_window_seconds
    backoff = 0.05
    while True:
        if monotonic_seconds() >= give_up_at:
            sys.stderr.write(
                f"shard {worker.shard_id}: reconnect window exhausted\n"
            )
            return 1
        try:
            sock = socket.create_connection((host, port), timeout=backoff + 1.0)
        except OSError:
            simclock.sleep(backoff)
            backoff = min(backoff * 2, 1.0)
            continue
        sock.settimeout(None)
        channel = FrameChannel(sock.makefile("rb"), sock.sendall)
        try:
            channel.write({"op": "hello", "shard": worker.shard_id, "token": token})
            ack = channel.read()
        except (ClusterError, OSError):
            sock.close()
            simclock.sleep(backoff)
            backoff = min(backoff * 2, 1.0)
            continue
        if ack is None or ack.get("op") != "hello":
            sock.close()
            simclock.sleep(backoff)
            backoff = min(backoff * 2, 1.0)
            continue
        if not ack.get("ok"):
            sock.close()
            return 0  # refused: superseded session, exit without a fight
        backoff = 0.05
        outcome = serve(worker, channel)
        try:
            sock.close()
        except OSError:
            pass
        if outcome == "shutdown":
            return 0
        give_up_at = monotonic_seconds() + reconnect_window_seconds


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.cluster.worker")
    parser.add_argument("--shard", type=int, required=True, help="shard id")
    parser.add_argument(
        "--transport",
        choices=("pipe", "socket"),
        default="pipe",
        help="frame transport back to the coordinator",
    )
    parser.add_argument(
        "--connect",
        default="",
        metavar="HOST:PORT",
        help="coordinator listener address (socket transport)",
    )
    parser.add_argument(
        "--token",
        default="",
        help="session token presented in the hello handshake (socket transport)",
    )
    parser.add_argument(
        "--reconnect-window",
        type=float,
        default=30.0,
        help="seconds to keep redialing after a lost connection (socket transport)",
    )
    args = parser.parse_args(argv)

    # Workers always run on real time, even when the coordinator process
    # exported REPRO_SIM_CLOCK=virtual to its environment: process-level
    # faults (HANG) must burn real seconds to be observable as liveness
    # misses from the coordinator side, and reconnect backoff paces a
    # real socket.  Simulated time is a coordinator-side illusion.
    set_clock(RealClock())
    worker = ShardWorker(args.shard)
    if args.transport == "pipe":
        return run_pipe(worker)
    if not args.connect or not args.token:
        parser.error("socket transport requires --connect and --token")
    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        parser.error(f"bad --connect address {args.connect!r}")
    return run_socket(worker, host or "127.0.0.1", port, args.token, args.reconnect_window)


if __name__ == "__main__":
    sys.exit(main())
