"""The scatter-gather coordinator: shard processes, failover, certified merge.

The coordinator owns N :class:`ShardHandle`\\ s, each wrapping a worker
subprocess (:mod:`repro.cluster.worker`) behind a
:class:`~repro.cluster.net.Transport` (pipe or TCP socket) and bound to
one partition of the forest (:mod:`repro.cluster.partition`).  A query
proceeds in rounds:

1. **scatter** — send every live, undominated, unfinished shard a
   ``step`` RPC (a fixed operation budget);
2. **gather** — collect each reply under the retry/timeout ladder,
   shipping the returned checkpoint into the coordinator's
   :class:`~repro.recovery.store.RecoveryStore`;
3. **merge** — fold the per-shard local top-k's and ``pending_bound``
   certificates through :mod:`repro.cluster.merge`; a shard whose bound
   is strictly below the merged k-th score is *dominated* and stops
   being stepped (TA-style early termination).

Failure handling is the point of the design:

- every RPC read runs a timeout ladder with backoff windows (the
  :class:`~repro.faults.supervisor.RetryPolicy` shape); each expired
  window is a *heartbeat miss*, and a worker silent past its liveness
  deadline is killed and failed over;
- a *lost connection* is distinguished from a lost worker: on a
  reconnect-capable transport whose process is still alive, the handle
  re-accepts the worker's redial and **replays** the in-flight request
  — the worker's idempotent reply cache answers without re-executing —
  so a network partition costs a pause, not a failover;
- failover respawns the worker, re-ships its cached partition, and
  restores the newest CRC-validated checkpoint *generation*
  (:class:`~repro.recovery.generations.CheckpointGenerations`; a
  corrupted newest checkpoint falls back to an older one, which
  deterministic replay makes equivalent) — so the failed-over shard
  resumes exactly where its last ``step`` left off, and the final
  answer is bit-identical to the fault-free run (the chaos matrix in
  ``tests/test_cluster_chaos.py`` proves this per seed × engine ×
  transport);
- process-level fault plans are deliberately *not* re-shipped to a
  replacement worker (mirroring the service's "recovered runs
  re-execute fault-free" contract), so one injected kill cannot
  permanently wedge a shard; injected *network* plans stay armed across
  failovers (the network does not heal because a process was replaced);
- the same ship-a-checkpoint machinery drives live **rebalancing**: a
  shard whose step latency stays far above the fleet median for
  consecutive rounds is retired and its checkpoint shipped to a fresh
  worker (see ``rebalance_*`` knobs on :class:`Coordinator`);
- when failover is disabled or exhausted, the shard is *lost*: the
  query still returns, degraded, with the missing shards named and a
  sound global ``pending_bound`` from
  :func:`repro.cluster.merge.lost_shard_bound`.

Each shard's link carries an explicit connection state machine —
``connected → degraded`` (heartbeat misses) ``→ partitioned`` (link
down, reconnect in flight) ``→ failed`` (shard lost) — surfaced through
``cluster_connection_state`` gauges, span events, and
:meth:`Coordinator.health`.

Locking discipline: the coordinator and handles guard their mutable
counters with short ``self._lock`` sections (they are watched by WPL001
and the runtime race detector) and *never* hold a lock across pipe or
socket I/O — the graph analyzer's WPLG02 blocking-under-lock rule
applies to this package with no baseline entries.
"""

from __future__ import annotations

import random
import statistics
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.merge import (
    MergedAnswer,
    dominated,
    global_pending_bound,
    kth_score,
    lost_shard_bound,
    merge_answers,
)
from repro.cluster.net import NetFaultArm, Transport, create_transport
from repro.cluster.partition import ShardSpec, build_shard_specs, remap_match_payload
from repro.cluster.protocol import FrameTimeout
from repro.core.engine import ALGORITHMS, Engine
from repro.core.base import TopKResult
from repro.core.stats import ExecutionStats, monotonic_seconds
from repro.core.topk import TopKAnswer
from repro.errors import (
    ClusterError,
    ConnectionLostError,
    EngineError,
    ProtocolError,
    WorkerLostError,
)
from repro.faults.plan import FaultPlan
from repro.faults.supervisor import RetryPolicy
from repro.obs import Observability
from repro.obs.spans import Span
from repro.query.pattern import TreePattern
from repro.recovery.codec import decode_match
from repro.recovery.generations import CheckpointGenerations
from repro.recovery.store import MemoryRecoveryStore, RecoveryStore
import repro.sim.clock as simclock
from repro.xmldb.dewey import Dewey, dewey_str, parse_dewey
from repro.xmldb.index import resolve_index_backend
from repro.xmldb.model import Database

_STATS_COUNTERS = (
    "server_operations",
    "join_comparisons",
    "partial_matches_created",
    "partial_matches_pruned",
    "extensions_generated",
    "deleted_extensions",
    "completed_matches",
    "routing_decisions",
    "checkpoints_taken",
    "wall_time_seconds",
)


class ClusterResult(TopKResult):
    """A :class:`~repro.core.base.TopKResult` plus cluster provenance.

    Everything the single-process result carries keeps its meaning —
    ``degraded`` / ``pending_bound`` are now *global* (they cover lost
    shards' stranded work) — and the extra fields say how the cluster
    got there.
    """

    __slots__ = (
        "shards",
        "missing_shards",
        "failovers",
        "heartbeat_misses",
        "rounds",
        "dominated_shards",
        "shard_reports",
        "reconnects",
        "rebalances",
        "transport",
    )

    def __init__(
        self,
        *args: Any,
        shards: int = 0,
        missing_shards: Sequence[int] = (),
        failovers: int = 0,
        heartbeat_misses: int = 0,
        rounds: int = 0,
        dominated_shards: Sequence[int] = (),
        shard_reports: Optional[Dict[int, Dict[str, Any]]] = None,
        reconnects: int = 0,
        rebalances: int = 0,
        transport: str = "pipe",
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.shards = shards
        self.missing_shards = list(missing_shards)
        self.failovers = failovers
        self.heartbeat_misses = heartbeat_misses
        self.rounds = rounds
        self.dominated_shards = list(dominated_shards)
        self.shard_reports = dict(shard_reports or {})
        self.reconnects = reconnects
        self.rebalances = rebalances
        self.transport = transport


class _ClusterMetrics:
    """Coordinator metric families (no-op instruments when disabled)."""

    def __init__(self, obs: Observability) -> None:
        registry = obs.registry
        self.rpc_latency = registry.histogram(
            "cluster_rpc_latency_seconds",
            "Coordinator-observed RPC round trip per shard and op.",
            labels=("shard", "op"),
        )
        self.heartbeat_misses = registry.counter(
            "cluster_heartbeat_misses_total",
            "Expired RPC wait windows (retry-ladder rungs) per shard.",
            labels=("shard",),
        )
        self.failovers = registry.counter(
            "cluster_failovers_total",
            "Worker respawn-and-restore events per shard.",
            labels=("shard",),
        )
        self.lost_shards = registry.counter(
            "cluster_lost_shards_total",
            "Shards abandoned after failover was exhausted or disabled.",
            labels=("shard",),
        )
        self.merge_threshold = registry.gauge(
            "cluster_merge_threshold",
            "Merged global k-th score after each gather round.",
        )
        self.live_shards = registry.gauge(
            "cluster_live_shards",
            "Shard workers currently believed alive.",
        )
        self.queries = registry.counter(
            "cluster_queries_total",
            "Cluster queries by terminal state.",
            labels=("state",),
        )
        self.reconnects = registry.counter(
            "cluster_reconnects_total",
            "Transport reconnects (same worker session resumed) per shard.",
            labels=("shard",),
        )
        self.rebalances = registry.counter(
            "cluster_rebalances_total",
            "Checkpoint-shipping shard migrations off degraded workers.",
            labels=("shard",),
        )
        self.connection_state = registry.gauge(
            "cluster_connection_state",
            "Per-shard link state: 0=connected 1=degraded 2=partitioned 3=failed.",
            labels=("shard",),
        )
        self.merge_threshold_child = self.merge_threshold.labels()
        self.live_shards_child = self.live_shards.labels()


#: Gauge encoding of the per-shard connection state machine.
CONNECTION_STATES = ("connected", "degraded", "partitioned", "failed")
_CONNECTION_CODES = {name: float(code) for code, name in enumerate(CONNECTION_STATES)}


class ShardHandle:
    """One shard's worker process (behind a transport) and liveness
    bookkeeping.

    RPC traffic is single-owner (the coordinator thread running the
    current query); the lock protects the counters that ``health()``
    reads from other threads.  I/O never happens under the lock.

    The handle runs the per-shard connection state machine::

        connected ──heartbeat miss──▶ degraded
        connected/degraded ──link lost──▶ partitioned
        partitioned ──redial accepted──▶ connected  (reconnect + replay)
        partitioned ──ladder exhausted──▶ failed    (failover or lost)

    ``partitioned → connected`` exists only on transports that support
    reconnection; a pipe goes ``partitioned → failed`` in one hop.
    """

    def __init__(
        self,
        spec: ShardSpec,
        transport: Transport,
        rpc_timeout_seconds: float,
        liveness_deadline_seconds: float,
        retry_policy: RetryPolicy,
        metrics: _ClusterMetrics,
    ) -> None:
        self.spec = spec
        self.shard_id = spec.shard_id
        self.transport = transport
        self.rpc_timeout_seconds = rpc_timeout_seconds
        self.liveness_deadline_seconds = liveness_deadline_seconds
        self.retry_policy = retry_policy
        self.metrics = metrics
        self._lock = threading.Lock()
        self._rng = random.Random(retry_policy.seed ^ (spec.shard_id + 1))
        self.rpc_seq = 0
        self.state = "new"  # new | live | dead | lost
        self.connection = "partitioned"  # no link yet
        self.failovers = 0
        self.heartbeat_misses = 0
        self.reconnects = 0
        self.rebalances = 0
        self.operations = 0
        self.done = False
        self.last_reply_at: Optional[float] = None
        self.last_step_seconds: Optional[float] = None
        self._inflight: Optional[Tuple[Dict[str, Any], float]] = None

    # -- connection state machine ------------------------------------------------

    def _set_connection(self, state: str) -> None:
        with self._lock:
            if self.connection == state:
                return
            self.connection = state
        self.metrics.connection_state.labels(str(self.shard_id)).set(
            _CONNECTION_CODES[state]
        )

    def _note_degraded(self) -> None:
        """A heartbeat miss: connected links degrade; a partitioned or
        failed link stays where it is (degraded is the *mild* state)."""
        with self._lock:
            if self.connection != "connected":
                return
            self.connection = "degraded"
        self.metrics.connection_state.labels(str(self.shard_id)).set(
            _CONNECTION_CODES["degraded"]
        )

    # -- process lifecycle -------------------------------------------------------

    def spawn(self) -> None:
        """Start (or restart) the worker via the transport."""
        self.transport.spawn()
        with self._lock:
            self.state = "live"
            self.done = False
            self._inflight = None
        self._set_connection("connected")

    def kill(self) -> None:
        """Tear the worker down (idempotent; used before respawn)."""
        self.transport.kill()
        with self._lock:
            self._inflight = None
            if self.state == "live":
                self.state = "dead"

    def close(self) -> None:
        self.kill()
        self.transport.close()

    def alive(self) -> bool:
        return self.transport.alive() and self.state == "live"

    # -- RPC with the retry/timeout + reconnect ladder ----------------------------

    def post(
        self,
        op: str,
        payload: Optional[Dict[str, Any]] = None,
        deadline_at: Optional[float] = None,
    ) -> None:
        """Send one request without waiting for the reply (the scatter
        half); :meth:`finish` collects it.  Raises
        :class:`WorkerLostError` when delivery is impossible even after
        the reconnect ladder."""
        with self._lock:
            self.rpc_seq += 1
            rpc_id = self.rpc_seq
        frame = {"op": op, "id": rpc_id, **(payload or {})}
        started = monotonic_seconds()
        with self._lock:
            self._inflight = (frame, started)
        give_up = self._give_up(started, deadline_at)
        self._deliver(frame, give_up)

    def finish(self, deadline_at: Optional[float] = None) -> Dict[str, Any]:
        """Collect the reply to the posted request (the gather half)."""
        with self._lock:
            inflight = self._inflight
        if inflight is None:
            raise ClusterError(f"shard {self.shard_id}: finish() without post()")
        frame, _ = inflight
        # The liveness clock restarts at gather time: scatter pipelines
        # frames to the whole fleet, so a shard must not be charged for
        # time spent gathering its siblings' replies.
        started = monotonic_seconds()
        reply = self._await(frame, started, deadline_at)
        self.metrics.rpc_latency.labels(str(self.shard_id), str(frame["op"])).observe(
            monotonic_seconds() - started
        )
        return reply

    def rpc(
        self,
        op: str,
        payload: Optional[Dict[str, Any]] = None,
        deadline_at: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One request/reply exchange; raises :class:`WorkerLostError`
        on EOF or a worker silent past the liveness deadline."""
        self.post(op, payload, deadline_at=deadline_at)
        return self.finish(deadline_at=deadline_at)

    def _give_up(self, started: float, deadline_at: Optional[float]) -> float:
        give_up = started + self.liveness_deadline_seconds
        if deadline_at is not None:
            give_up = min(give_up, deadline_at)
        return give_up

    def _deliver(self, frame: Dict[str, Any], give_up: float) -> None:
        """Send one frame, riding out partitions via the reconnect
        ladder; raises :class:`WorkerLostError` when the link cannot be
        restored in time."""
        try:
            self.transport.send(frame)
        except ConnectionLostError as exc:
            self._set_connection("partitioned")
            if not self._reconnect_and_replay(frame, give_up):
                raise WorkerLostError(self.shard_id, "eof") from exc

    def _reconnect_and_replay(self, frame: Dict[str, Any], give_up: float) -> bool:
        """Restore the link to the *same* worker session and replay the
        in-flight frame.  Replay is safe because the worker's reply
        cache answers an already-executed RPC id without re-executing.
        ``False`` when the transport cannot reconnect (pipe), the worker
        process is dead, or ``give_up`` passes first."""
        while monotonic_seconds() < give_up:
            if not self.transport.supports_reconnect or not self.transport.alive():
                return False
            if not self.transport.reconnect(give_up):
                return False
            with self._lock:
                self.reconnects += 1
            self.metrics.reconnects.labels(str(self.shard_id)).inc()
            self._set_connection("connected")
            try:
                self.transport.send(frame)
                return True
            except ConnectionLostError:
                # Severed again mid-replay (reconnect storm): climb the
                # ladder once more until give_up.
                self._set_connection("partitioned")
                continue
        return False

    def _await(
        self,
        frame: Dict[str, Any],
        started: float,
        deadline_at: Optional[float],
    ) -> Dict[str, Any]:
        """The ladder: bounded wait windows with backoff, each expiry a
        heartbeat miss, the total capped by the liveness deadline; a
        dropped connection reconnects-and-replays when the transport
        supports it."""
        rpc_id = frame["id"]
        give_up = self._give_up(started, deadline_at)
        attempt = 0
        window = self.rpc_timeout_seconds
        while True:
            slice_end = min(monotonic_seconds() + window, give_up)
            try:
                reply = self.transport.recv(slice_end)
            except FrameTimeout:
                self._note_degraded()
                with self._lock:
                    self.heartbeat_misses += 1
                self.metrics.heartbeat_misses.labels(str(self.shard_id)).inc()
                if monotonic_seconds() >= give_up:
                    raise WorkerLostError(self.shard_id, "timeout") from None
                attempt += 1
                window = self.rpc_timeout_seconds + self.retry_policy.backoff_delay(
                    attempt, self._rng
                )
                continue
            except (ConnectionLostError, ProtocolError) as exc:
                self._set_connection("partitioned")
                if monotonic_seconds() >= give_up or not self._reconnect_and_replay(
                    frame, give_up
                ):
                    raise WorkerLostError(self.shard_id, "eof") from exc
                continue
            if reply.get("id") != rpc_id:
                # A stale reply from before a timeout we already charged;
                # drain and keep waiting for ours.
                continue
            now = monotonic_seconds()
            with self._lock:
                self.last_reply_at = now
                self._inflight = None
            self._set_connection("connected")
            return reply

    def ping(self, deadline_at: Optional[float] = None) -> bool:
        """Liveness probe; ``False`` (never an exception) on a miss."""
        try:
            reply = self.rpc("ping", deadline_at=deadline_at)
        except WorkerLostError:
            return False
        return bool(reply.get("ok"))

    def last_heartbeat_age(self) -> Optional[float]:
        with self._lock:
            last = self.last_reply_at
        return None if last is None else monotonic_seconds() - last

    def snapshot_counters(self) -> Dict[str, Any]:
        """One atomic health row for this shard."""
        with self._lock:
            return {
                "state": self.state,
                "connection": self.connection,
                "transport": self.transport.kind,
                "failovers": self.failovers,
                "heartbeat_misses": self.heartbeat_misses,
                "reconnects": self.reconnects,
                "rebalances": self.rebalances,
                "operations": self.operations,
                "done": self.done,
                "last_heartbeat_age_seconds": (
                    None
                    if self.last_reply_at is None
                    else monotonic_seconds() - self.last_reply_at
                ),
                "documents": len(self.spec.global_ordinals),
            }


class _ShardQueryState:
    """Per-query, per-shard merge inputs (single-owner, no locking)."""

    __slots__ = (
        "answers",
        "match_payloads",
        "bound",
        "done",
        "lost",
        "is_dominated",
        "degraded",
        "stats",
        "reported",
    )

    def __init__(self) -> None:
        self.answers: List[Tuple[Dewey, float]] = []
        self.match_payloads: Dict[str, Dict[str, Any]] = {}
        self.bound = 0.0
        self.done = False
        self.lost = False
        self.is_dominated = False
        self.degraded = False
        self.stats: Dict[str, float] = {}
        self.reported = False


class Coordinator:
    """Fault-tolerant scatter-gather over N shard workers."""

    def __init__(
        self,
        database: Database,
        shards: int = 2,
        skew: float = 0.0,
        partition_seed: int = 0,
        step_operations: int = 200,
        rpc_timeout_seconds: float = 1.0,
        liveness_deadline_seconds: float = 4.0,
        heartbeat_interval_seconds: float = 1.0,
        max_failovers: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        recovery_store: Optional[RecoveryStore] = None,
        observability: Optional[Observability] = None,
        python_executable: Optional[str] = None,
        transport: str = "pipe",
        worker_reconnect_window_seconds: float = 30.0,
        checkpoint_generations: int = 3,
        rebalance_latency_factor: float = 4.0,
        rebalance_min_latency_seconds: float = 0.25,
        rebalance_slow_rounds: int = 2,
        rebalance: bool = True,
        index_backend: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise ClusterError(f"shards must be >= 1, got {shards}")
        if step_operations < 1:
            raise ClusterError(f"step_operations must be >= 1, got {step_operations}")
        if rpc_timeout_seconds <= 0 or liveness_deadline_seconds <= 0:
            raise ClusterError("rpc timeout and liveness deadline must be positive")
        if rebalance_latency_factor < 1.0:
            raise ClusterError(
                f"rebalance_latency_factor must be >= 1, got {rebalance_latency_factor}"
            )
        if rebalance_slow_rounds < 1:
            raise ClusterError(
                f"rebalance_slow_rounds must be >= 1, got {rebalance_slow_rounds}"
            )
        self.database = database
        self.shards = shards
        self.step_operations = step_operations
        # Resolved once here (explicit > $REPRO_INDEX_BACKEND > default)
        # and shipped to every worker in the begin payload, so the whole
        # fleet builds its shard indexes on one backend regardless of the
        # workers' own environments.
        self.index_backend = resolve_index_backend(index_backend)
        self.heartbeat_interval_seconds = heartbeat_interval_seconds
        self.max_failovers = max_failovers
        self.transport = transport
        self.rebalance_enabled = rebalance
        self.rebalance_latency_factor = rebalance_latency_factor
        self.rebalance_min_latency_seconds = rebalance_min_latency_seconds
        self.rebalance_slow_rounds = rebalance_slow_rounds
        self.store = recovery_store if recovery_store is not None else MemoryRecoveryStore()
        self.checkpoints = CheckpointGenerations(self.store, keep=checkpoint_generations)
        self.obs = observability if observability is not None else Observability.disabled()
        self.metrics = _ClusterMetrics(self.obs)
        policy = retry_policy if retry_policy is not None else RetryPolicy(
            base_delay=rpc_timeout_seconds / 2, max_delay=liveness_deadline_seconds
        )
        self.specs = build_shard_specs(database, shards, skew=skew, seed=partition_seed)
        self.handles = [
            ShardHandle(
                spec,
                create_transport(
                    transport,
                    spec.shard_id,
                    python_executable=python_executable,
                    worker_reconnect_window_seconds=worker_reconnect_window_seconds,
                ),
                rpc_timeout_seconds,
                liveness_deadline_seconds,
                policy,
                self.metrics,
            )
            for spec in self.specs
        ]
        self._lock = threading.Lock()
        # Slot condition: waiters block here (clock-seam progress wait)
        # until the single query slot frees, instead of spin-polling.
        self._idle_cond = threading.Condition(self._lock)
        self._active = False
        self._closed = False
        self._queries = 0
        self._degraded_queries = 0
        self._failovers_total = 0
        self._reconnects_total = 0
        self._rebalances_total = 0
        self._engines: Dict[Tuple[str, bool], Engine] = {}
        self.last_span: Optional[Span] = None

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut every worker down (best-effort ``shutdown``, then kill)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            # Closing also frees slot waiters: their next submit attempt
            # raises "coordinator is closed" instead of blocking forever.
            self._idle_cond.notify_all()
        for handle in self.handles:
            if handle.alive():
                try:
                    handle.rpc("shutdown")
                except (ClusterError, WorkerLostError):
                    pass
            handle.close()

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- observability -----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Per-shard liveness + coordinator totals (the satellite-6 view)."""
        with self._lock:
            totals = {
                "queries": self._queries,
                "degraded_queries": self._degraded_queries,
                "failovers": self._failovers_total,
                "reconnects": self._reconnects_total,
                "rebalances": self._rebalances_total,
                "active": self._active,
                "closed": self._closed,
            }
        shard_rows = {
            handle.shard_id: handle.snapshot_counters() for handle in self.handles
        }
        live = sum(1 for row in shard_rows.values() if row["state"] == "live")
        self.metrics.live_shards_child.set(float(live))
        return {
            "shards": self.shards,
            "transport": self.transport,
            "live_shards": live,
            "per_shard": shard_rows,
            **totals,
        }

    def probe(self, deadline_seconds: Optional[float] = None) -> Dict[int, bool]:
        """Explicit heartbeat sweep over live workers (used between
        queries; during a query the step traffic is the heartbeat)."""
        deadline_at = (
            monotonic_seconds() + deadline_seconds if deadline_seconds else None
        )
        return {
            handle.shard_id: handle.ping(deadline_at=deadline_at)
            for handle in self.handles
            if handle.alive()
        }

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until the single query slot is free (or the coordinator
        closes); True when the slot was observed free within ``timeout``.

        This is a *progress* wait on the clock seam
        (:meth:`repro.sim.clock.Clock.wait_for`): the predicate turns
        true when another thread's query completes, so it is never
        warped away — even a :class:`~repro.sim.clock.VirtualClock`
        blocks here for the real hand-off.
        """
        return simclock.wait_for(
            self._idle_cond, lambda: self._closed or not self._active, timeout
        )

    # -- the query ---------------------------------------------------------------

    def run_query(
        self,
        query: Union[str, TreePattern],
        k: int,
        algorithm: str = "whirlpool_s",
        relaxed: bool = True,
        routing: str = "min_alive",
        deadline_seconds: Optional[float] = None,
        step_operations: Optional[int] = None,
        engine_faults: Optional[FaultPlan] = None,
        engine_retry_policy: Optional[RetryPolicy] = None,
        process_faults: Optional[FaultPlan] = None,
        net_faults: Optional[FaultPlan] = None,
        fail_over: bool = True,
    ) -> ClusterResult:
        """Evaluate one top-k query across the shard fleet.

        ``engine_faults`` ships an in-engine chaos plan to every worker
        (pair it with ``engine_retry_policy`` so workers recover injected
        faults in-engine, as the single-process chaos tests do);
        ``process_faults`` arms worker-boundary KILL/HANG/SLOW_PIPE
        rules (:meth:`FaultPlan.worker_chaos`); ``net_faults`` arms
        coordinator-side PARTITION/CORRUPT_FRAME/DUP_FRAME/
        RECONNECT_STORM rules on each shard's link
        (:meth:`FaultPlan.net_chaos`) — unlike process plans, net plans
        stay armed across failovers.  ``fail_over=False`` turns every
        worker loss into a lost shard — the degraded-answer path the
        soundness tests exercise.
        """
        if algorithm not in ALGORITHMS:
            raise EngineError(
                f"unknown algorithm {algorithm!r}; expected one of "
                f"{', '.join(sorted(ALGORITHMS))}"
            )
        with self._lock:
            if self._closed:
                raise ClusterError("coordinator is closed")
            if self._active:
                raise ClusterError("coordinator runs one query at a time")
            self._active = True
            self._queries += 1
        span: Optional[Span] = None
        if self.obs.enabled:
            span = Span(
                "cluster_query",
                {
                    "xpath": str(query),
                    "k": k,
                    "algorithm": algorithm,
                    "shards": self.shards,
                },
            )
        for handle in self.handles:
            handle.transport.arm_net_faults(
                NetFaultArm(net_faults, handle.shard_id)
                if net_faults is not None
                else None
            )
        try:
            result = self._run(
                query,
                k,
                algorithm,
                relaxed,
                routing,
                deadline_seconds,
                step_operations or self.step_operations,
                engine_faults,
                engine_retry_policy,
                process_faults,
                fail_over,
                span,
            )
        finally:
            for handle in self.handles:
                handle.transport.arm_net_faults(None)
            if span is not None:
                span.finish()
            with self._lock:
                if span is not None:
                    self.last_span = span
                self._active = False
                # Wake every submit blocked on the slot (wait_idle).
                self._idle_cond.notify_all()
        with self._lock:
            if result.degraded:
                self._degraded_queries += 1
            self._failovers_total += result.failovers
            self._reconnects_total += result.reconnects
            self._rebalances_total += result.rebalances
        self.metrics.queries.labels("degraded" if result.degraded else "ok").inc()
        return result

    # The worker bootstrap sequence (spawn → init → begin) and one step,
    # all under the failover ladder.

    def _store_key(self, shard_id: int) -> str:
        return f"cluster-shard-{shard_id}"

    def _bootstrap(
        self,
        handle: ShardHandle,
        begin_payload: Dict[str, Any],
        process_faults: Optional[FaultPlan],
        restore: Optional[Dict[str, Any]],
        deadline_at: Optional[float],
        first_boot: bool,
    ) -> None:
        """Spawn + init + begin one worker.  ``process_faults`` ship only
        on first boot: a replacement worker must not re-arm the fault
        that killed its predecessor."""
        handle.kill()
        handle.spawn()
        init_payload: Dict[str, Any] = {"documents": list(handle.spec.xml_texts)}
        if first_boot and process_faults is not None:
            init_payload["process_faults"] = process_faults.as_dict()
        reply = handle.rpc("init", init_payload, deadline_at=deadline_at)
        if not reply.get("ok"):
            raise WorkerLostError(handle.shard_id, "spawn_failed")
        payload = dict(begin_payload)
        if restore is not None:
            payload["restore"] = restore
        reply = handle.rpc("begin", payload, deadline_at=deadline_at)
        if not reply.get("ok"):
            raise WorkerLostError(handle.shard_id, "spawn_failed")

    def _step_with_failover(
        self,
        handle: ShardHandle,
        state: _ShardQueryState,
        begin_payload: Dict[str, Any],
        process_faults: Optional[FaultPlan],
        step_ops: int,
        deadline_at: Optional[float],
        fail_over: bool,
        span: Optional[Span],
        sent: bool,
    ) -> Optional[Dict[str, Any]]:
        """Gather one step reply, failing over as needed.

        ``sent=True`` means the scatter phase already wrote the step
        frame and only the reply is outstanding.  Returns ``None`` when
        the shard was lost (failover disabled/exhausted or deadline
        passed); the caller marks it missing.  A ``resumable`` worker
        error (an injected in-engine crash — the resident snapshot did
        not advance) is retried once fault-free, mirroring the service's
        recovery contract; any other worker-reported error propagates to
        the caller unretried.
        """
        fault_free = False
        started_at = monotonic_seconds()
        while True:
            try:
                if not sent:
                    handle.post(
                        "step",
                        {"operations": step_ops, "fault_free": fault_free},
                        deadline_at=deadline_at,
                    )
                sent = False
                reply = handle.finish(deadline_at=deadline_at)
                if reply.get("ok") or fault_free or not reply.get("resumable"):
                    # Step latency feeds the rebalancing trigger; measured
                    # from gather entry so a SLOW_PIPE'd shard shows its
                    # real stall, not its siblings' gather time.
                    with handle._lock:
                        handle.last_step_seconds = monotonic_seconds() - started_at
                    return reply
                if span is not None:
                    span.event(
                        "step_crash_retry",
                        shard=handle.shard_id,
                        error=reply.get("error"),
                    )
                fault_free = True
            except WorkerLostError as exc:
                if span is not None:
                    span.event(
                        "worker_lost", shard=handle.shard_id, reason=exc.reason
                    )
                over_deadline = (
                    deadline_at is not None and monotonic_seconds() >= deadline_at
                )
                with handle._lock:
                    exhausted = handle.failovers >= self.max_failovers
                if not fail_over or exhausted or over_deadline:
                    handle.kill()
                    with handle._lock:
                        handle.state = "lost"
                    handle._set_connection("failed")
                    self.metrics.lost_shards.labels(str(handle.shard_id)).inc()
                    return None
                with handle._lock:
                    handle.failovers += 1
                self.metrics.failovers.labels(str(handle.shard_id)).inc()
                if span is not None:
                    span.event("failover", shard=handle.shard_id)
                restore = self.checkpoints.load(self._store_key(handle.shard_id))
                try:
                    self._bootstrap(
                        handle,
                        begin_payload,
                        process_faults,
                        restore,
                        deadline_at,
                        first_boot=False,
                    )
                except WorkerLostError:
                    continue  # charge another failover (or exhaust) next loop
                # Re-issue the step ourselves; the engine-level fault that
                # crashed a step (vs. killed the process) retries clean.
                fault_free = True

    def _run(
        self,
        query: Union[str, TreePattern],
        k: int,
        algorithm: str,
        relaxed: bool,
        routing: str,
        deadline_seconds: Optional[float],
        step_ops: int,
        engine_faults: Optional[FaultPlan],
        engine_retry_policy: Optional[RetryPolicy],
        process_faults: Optional[FaultPlan],
        fail_over: bool,
        span: Optional[Span],
    ) -> ClusterResult:
        started = monotonic_seconds()
        deadline_at = started + deadline_seconds if deadline_seconds else None
        engine = self._engine_for(query, relaxed)
        contributions = engine.score_model.contributions()
        max_total = engine.score_model.max_total()
        begin_payload: Dict[str, Any] = {
            "query": engine.pattern.to_xpath(),
            "k": k,
            "algorithm": algorithm,
            "routing": routing,
            "relaxed": relaxed,
            "contributions": contributions,
            "step_operations": step_ops,
            "index_backend": self.index_backend,
        }
        if engine_faults is not None:
            begin_payload["engine_faults"] = engine_faults.as_dict()
        if engine_retry_policy is not None:
            begin_payload["engine_retry"] = engine_retry_policy.as_dict()

        states: Dict[int, _ShardQueryState] = {
            handle.shard_id: _ShardQueryState() for handle in self.handles
        }
        # Boot every shard (first boot ships the process-fault plan).
        for handle in self.handles:
            self.checkpoints.delete(self._store_key(handle.shard_id))
            try:
                self._bootstrap(
                    handle,
                    begin_payload,
                    process_faults,
                    restore=None,
                    deadline_at=deadline_at,
                    first_boot=True,
                )
            except WorkerLostError:
                # Boot-time loss goes straight through the step ladder on
                # round 1 (sent=False forces a fresh step → failover).
                pass

        rounds = 0
        merged: List[MergedAnswer] = []
        slow_rounds: Dict[int, int] = {handle.shard_id: 0 for handle in self.handles}
        while True:
            if deadline_at is not None and monotonic_seconds() >= deadline_at:
                break
            active = [
                handle
                for handle in self.handles
                if not states[handle.shard_id].done
                and not states[handle.shard_id].lost
                and not states[handle.shard_id].is_dominated
            ]
            if not active:
                break
            rounds += 1
            # Scatter: pipeline the step frames so shards work in parallel.
            pending: List[Tuple[ShardHandle, bool]] = []
            for handle in active:
                try:
                    handle.post(
                        "step",
                        {"operations": step_ops, "fault_free": False},
                        deadline_at=deadline_at,
                    )
                    pending.append((handle, True))
                except WorkerLostError:
                    pending.append((handle, False))
            # Gather, with failover, one shard at a time.
            for handle, sent in pending:
                state = states[handle.shard_id]
                reply = self._step_with_failover(
                    handle,
                    state,
                    begin_payload,
                    process_faults,
                    step_ops,
                    deadline_at,
                    fail_over,
                    span,
                    sent=sent,
                )
                if reply is None or not reply.get("ok"):
                    if reply is not None:
                        # Non-resumable worker error: give the shard up.
                        handle.kill()
                        with handle._lock:
                            handle.state = "lost"
                        handle._set_connection("failed")
                        self.metrics.lost_shards.labels(str(handle.shard_id)).inc()
                    state.lost = True
                    continue
                self._absorb(handle, state, reply)
            # Merge + threshold + domination.
            merged = merge_answers(
                {
                    shard_id: state.answers
                    for shard_id, state in states.items()
                    if state.reported
                },
                k,
            )
            threshold = kth_score(merged, k)
            if threshold is not None:
                self.metrics.merge_threshold_child.set(threshold)
            for handle in self.handles:
                state = states[handle.shard_id]
                if state.done or state.lost or state.is_dominated:
                    continue
                if dominated(state.bound, threshold):
                    state.is_dominated = True
                    if span is not None:
                        span.event(
                            "shard_dominated",
                            shard=handle.shard_id,
                            bound=state.bound,
                            threshold=threshold,
                        )
            if span is not None:
                span.event(
                    "round",
                    number=rounds,
                    threshold=threshold,
                    active=len(active),
                )
            if self.rebalance_enabled and fail_over:
                self._maybe_rebalance(
                    states, slow_rounds, begin_payload, deadline_at, span
                )
            self._probe_idle(states, deadline_at)

        return self._finalize(
            engine, states, merged, k, algorithm, started, rounds, span
        )

    def _absorb(
        self, handle: ShardHandle, state: _ShardQueryState, reply: Dict[str, Any]
    ) -> None:
        """Fold one step reply into the shard's merge inputs."""
        ordinals = handle.spec.global_ordinals
        answers: List[Tuple[Dewey, float]] = []
        payloads: Dict[str, Dict[str, Any]] = {}
        for entry in reply.get("answers", []):
            payload = remap_match_payload(entry["match"], ordinals)
            dewey = parse_dewey(payload["root"])
            answers.append((dewey, float(entry["score"])))
            payloads[payload["root"]] = payload
        state.answers = answers
        state.match_payloads = payloads
        state.bound = float(reply.get("pending_bound", 0.0))
        state.done = bool(reply.get("done"))
        state.degraded = bool(reply.get("degraded"))
        state.stats = dict(reply.get("stats", {}))
        state.reported = True
        operations = int(reply.get("operations", 0))
        with handle._lock:
            handle.operations = operations
            handle.done = state.done
        checkpoint = reply.get("checkpoint")
        if checkpoint is not None:
            self.checkpoints.save(self._store_key(handle.shard_id), checkpoint)
        elif state.done:
            self.checkpoints.delete(self._store_key(handle.shard_id))

    # -- rebalancing --------------------------------------------------------------

    def _maybe_rebalance(
        self,
        states: Dict[int, _ShardQueryState],
        slow_rounds: Dict[int, int],
        begin_payload: Dict[str, Any],
        deadline_at: Optional[float],
        span: Optional[Span],
    ) -> None:
        """Retire-and-migrate shards whose step latency stays far above
        the fleet.  The trigger is relative (``rebalance_latency_factor``
        × the median of the *other* still-active shards' latencies) with
        an absolute floor (``rebalance_min_latency_seconds``) so healthy
        microsecond jitter can never look like degradation, and must
        hold for ``rebalance_slow_rounds`` consecutive rounds.  A shard
        grinding alone — its siblings already done or dominated — is
        judged against the floor only.  Each shard's migrations share
        the failover budget, so a slice that is legitimately huge (and
        therefore still slow on the replacement) cannot thrash through
        endless respawns."""
        latencies: Dict[int, float] = {}
        for handle in self.handles:
            state = states[handle.shard_id]
            if state.done or state.lost or state.is_dominated:
                continue
            with handle._lock:
                latency = handle.last_step_seconds
            if latency is not None:
                latencies[handle.shard_id] = latency
        budget = max(1, self.max_failovers)
        for handle in self.handles:
            shard_id = handle.shard_id
            if shard_id not in latencies:
                continue
            others = [lat for sid, lat in latencies.items() if sid != shard_id]
            threshold = self.rebalance_min_latency_seconds
            if others:
                threshold = max(
                    threshold,
                    self.rebalance_latency_factor * statistics.median(others),
                )
            if latencies[shard_id] >= threshold:
                slow_rounds[shard_id] += 1
            else:
                slow_rounds[shard_id] = 0
            with handle._lock:
                spent = handle.rebalances
            if slow_rounds[shard_id] >= self.rebalance_slow_rounds:
                slow_rounds[shard_id] = 0
                if spent < budget:
                    self._rebalance(handle, begin_payload, deadline_at, span)

    def _rebalance(
        self,
        handle: ShardHandle,
        begin_payload: Dict[str, Any],
        deadline_at: Optional[float],
        span: Optional[Span],
    ) -> None:
        """Ship the shard's newest validated checkpoint to a fresh worker
        and retire the laggard — the failover machinery, reused for a
        worker that is alive but degraded.  The replacement never
        re-arms process faults (same contract as failover), which is
        exactly what migrates off a SLOW_PIPE'd worker."""
        with handle._lock:
            handle.rebalances += 1
        self.metrics.rebalances.labels(str(handle.shard_id)).inc()
        if span is not None:
            span.event("rebalance", shard=handle.shard_id)
        restore = self.checkpoints.load(self._store_key(handle.shard_id))
        try:
            self._bootstrap(
                handle,
                begin_payload,
                process_faults=None,
                restore=restore,
                deadline_at=deadline_at,
                first_boot=False,
            )
        except WorkerLostError:
            # The replacement failed to come up; the next step's failover
            # ladder (which this shard will now enter) owns recovery.
            pass
        with handle._lock:
            handle.last_step_seconds = None

    def _probe_idle(
        self, states: Dict[int, _ShardQueryState], deadline_at: Optional[float]
    ) -> None:
        """Heartbeat shards that finished early but must stay live (their
        answers are already merged; this just keeps health() honest)."""
        for handle in self.handles:
            state = states[handle.shard_id]
            if not (state.done or state.is_dominated) or not handle.alive():
                continue
            age = handle.last_heartbeat_age()
            if age is not None and age >= self.heartbeat_interval_seconds:
                handle.ping(deadline_at=deadline_at)

    def _finalize(
        self,
        engine: Engine,
        states: Dict[int, _ShardQueryState],
        merged: List[MergedAnswer],
        k: int,
        algorithm: str,
        started: float,
        rounds: int,
        span: Optional[Span],
    ) -> ClusterResult:
        max_contributions = {
            node_id: engine.score_model.max_contribution(node_id)
            for node_id in engine.score_model.node_ids()
        }
        answers: List[TopKAnswer] = []
        for dewey, score, shard_id in merged:
            payload = states[shard_id].match_payloads[dewey_str(dewey)]
            match = decode_match(
                payload, self.database.node_by_dewey, max_contributions
            )
            root = self.database.node_by_dewey(dewey)
            if root is None:  # pragma: no cover - remap guarantees presence
                raise ClusterError(f"merged answer references unknown root {dewey}")
            answers.append(TopKAnswer(root, score, match))

        missing = sorted(
            shard_id for shard_id, state in states.items() if state.lost
        )
        dominated_ids = sorted(
            shard_id for shard_id, state in states.items() if state.is_dominated
        )
        unfinished = [
            state
            for state in states.values()
            if not state.done and not state.lost and not state.is_dominated
        ]
        live_bounds = [state.bound for state in unfinished if state.reported]
        live_bounds.extend(
            states[shard_id].bound for shard_id in dominated_ids
        )
        lost_bounds = [
            lost_shard_bound(
                state.bound if state.reported else None,
                state.answers if state.reported else None,
                k,
                engine.score_model.max_total(),
            )
            for state in states.values()
            if state.lost
        ]
        # Degraded = work was left anywhere we cannot vouch for: a lost
        # shard, an unfinished live shard (deadline), a never-reported
        # shard, or a shard whose own run was terminally degraded
        # (fault-dropped or abandoned matches — reported done, but its
        # pending_bound certifies the loss).  Dominated shards are *not*
        # degradation — their bound proves they cannot contribute.
        unreported = [
            state for state in states.values() if not state.reported and not state.lost
        ]
        terminal = [
            state
            for state in states.values()
            if state.done and state.degraded and not state.lost
        ]
        degraded = (
            bool(missing) or bool(unfinished) or bool(unreported) or bool(terminal)
        )
        live_bounds.extend(state.bound for state in terminal)
        pending = global_pending_bound(
            live_bounds
            + [engine.score_model.max_total() for _ in unreported],
            lost_bounds,
        )
        if not degraded and not dominated_ids:
            pending = 0.0

        stats = ExecutionStats()
        for state in states.values():
            if not state.stats:
                continue
            for field in _STATS_COUNTERS:
                value = state.stats.get(field)
                if value is not None:
                    setattr(stats, field, getattr(stats, field) + value)
        stats.wall_time_seconds = monotonic_seconds() - started

        failovers = 0
        misses = 0
        reconnects = 0
        rebalances = 0
        for handle in self.handles:
            with handle._lock:
                failovers += handle.failovers
                misses += handle.heartbeat_misses
                reconnects += handle.reconnects
                rebalances += handle.rebalances

        result = ClusterResult(
            answers,
            stats,
            f"cluster:{algorithm}",
            k,
            engine.pattern,
            degraded=degraded,
            pending_bound=pending,
            shards=self.shards,
            missing_shards=missing,
            failovers=failovers,
            heartbeat_misses=misses,
            rounds=rounds,
            dominated_shards=dominated_ids,
            reconnects=reconnects,
            rebalances=rebalances,
            transport=self.transport,
            shard_reports={
                shard_id: {
                    "done": state.done,
                    "lost": state.lost,
                    "dominated": state.is_dominated,
                    "degraded": state.degraded,
                    "bound": state.bound,
                    "answers": len(state.answers),
                }
                for shard_id, state in states.items()
            },
        )
        if span is not None:
            span.annotate("degraded", degraded)
            span.annotate("missing_shards", missing)
            span.annotate("rounds", rounds)
        return result

    def _engine_for(self, query: Union[str, TreePattern], relaxed: bool) -> Engine:
        key = (str(query), relaxed)
        with self._lock:
            engine = self._engines.get(key)
        if engine is not None:
            return engine
        built = Engine(
            self.database, query, relaxed=relaxed, index_backend=self.index_backend
        )
        with self._lock:
            engine = self._engines.setdefault(key, built)
        return engine
