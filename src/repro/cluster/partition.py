"""Partitioning the document forest across shards, and Dewey remapping.

A shard owns a subset of the forest's documents.  Workers re-parse their
subset into a fresh :class:`~repro.xmldb.model.Database`, which re-stamps
document ordinals ``0..m-1`` — so every Dewey id crossing the wire back
to the coordinator must have its first component mapped from the shard's
local ordinal to the global one.  That remap is the *only* translation
the cluster needs: scores are computed from coordinator-shipped global
contribution tables (:meth:`repro.scoring.model.ScoreModel.contributions`),
so a shard-local match is bit-identical to the same match in a
single-process run except for its document ordinal.

Partitions are deterministic in ``(documents, shards, skew, seed)``.
``skew`` exists because real shard layouts are never balanced — the
differential tests exercise pathological splits (one shard owning most
of the forest, another owning one document) to prove merge correctness
does not depend on balance.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ClusterError
from repro.xmldb.dewey import Dewey, dewey_str, parse_dewey
from repro.xmldb.model import Database
from repro.xmldb.serializer import serialize


class ShardSpec:
    """One shard's slice of the forest, ready to ship to a worker."""

    __slots__ = ("shard_id", "global_ordinals", "xml_texts")

    def __init__(
        self,
        shard_id: int,
        global_ordinals: Tuple[int, ...],
        xml_texts: Tuple[str, ...],
    ) -> None:
        self.shard_id = shard_id
        self.global_ordinals = global_ordinals
        self.xml_texts = xml_texts

    def __repr__(self) -> str:
        return (
            f"ShardSpec(shard={self.shard_id}, "
            f"documents={list(self.global_ordinals)})"
        )


def partition_ordinals(
    count: int, shards: int, skew: float = 0.0, seed: int = 0
) -> List[List[int]]:
    """Split document ordinals ``0..count-1`` into ``shards`` lists.

    ``skew == 0`` deals documents round-robin (balanced).  ``skew > 0``
    draws a weight ``(1 + skew) ** i`` for shard ``i`` and assigns each
    document to a shard sampled by weight from the seeded RNG — larger
    skew concentrates the forest on the last shards.  Every shard list
    stays sorted so partitioning is order-stable.

    Empty shards are allowed (an extreme skew may starve one); workers
    handle an empty partition by reporting ``done`` immediately.
    """
    if count < 0:
        raise ClusterError(f"document count must be >= 0, got {count}")
    if shards < 1:
        raise ClusterError(f"shards must be >= 1, got {shards}")
    if skew < 0:
        raise ClusterError(f"skew must be >= 0, got {skew}")
    assignment: List[List[int]] = [[] for _ in range(shards)]
    if skew == 0.0:
        for ordinal in range(count):
            assignment[ordinal % shards].append(ordinal)
        return assignment
    rng = random.Random(seed)
    weights = [(1.0 + skew) ** index for index in range(shards)]
    total = sum(weights)
    for ordinal in range(count):
        pick = rng.random() * total
        cumulative = 0.0
        chosen = shards - 1
        for index, weight in enumerate(weights):
            cumulative += weight
            if pick < cumulative:
                chosen = index
                break
        assignment[chosen].append(ordinal)
    return assignment


def build_shard_specs(
    database: Database, shards: int, skew: float = 0.0, seed: int = 0
) -> List[ShardSpec]:
    """Serialize the forest into per-shard document sets.

    The XML text is the unit of shipping (and of re-shipping on
    failover): the coordinator caches these specs for the lifetime of
    the cluster so respawning a worker never re-serializes.
    """
    assignment = partition_ordinals(len(database.documents), shards, skew, seed)
    specs: List[ShardSpec] = []
    for shard_id, ordinals in enumerate(assignment):
        texts = tuple(
            serialize(database.documents[ordinal], pretty=False)
            for ordinal in ordinals
        )
        specs.append(ShardSpec(shard_id, tuple(ordinals), texts))
    return specs


def remap_dewey(local: Dewey, global_ordinals: Sequence[int]) -> Dewey:
    """Translate a shard-local Dewey id to the global forest.

    The first component is the shard-local document ordinal (position in
    the shard's partition); everything below the document root is
    untouched.
    """
    if not local:
        raise ClusterError("cannot remap an empty Dewey id")
    position = local[0]
    if not 0 <= position < len(global_ordinals):
        raise ClusterError(
            f"shard-local ordinal {position} outside partition of "
            f"{len(global_ordinals)} documents"
        )
    return (global_ordinals[position],) + tuple(local[1:])


def remap_dewey_str(text: str, global_ordinals: Sequence[int]) -> str:
    """String-level :func:`remap_dewey` (wire payloads carry strings)."""
    return dewey_str(remap_dewey(parse_dewey(text), global_ordinals))


def remap_match_payload(
    payload: Dict[str, Any], global_ordinals: Sequence[int]
) -> Dict[str, Any]:
    """Remap every Dewey reference in an encoded-match wire payload.

    The shape mirrors :func:`repro.recovery.codec.encode_match`:
    ``root`` plus per-node ``instantiations`` (``None`` = deleted leaf).
    """
    remapped = dict(payload)
    remapped["root"] = remap_dewey_str(payload["root"], global_ordinals)
    remapped["instantiations"] = {
        node_id: None if dewey is None else remap_dewey_str(dewey, global_ordinals)
        for node_id, dewey in payload["instantiations"].items()
    }
    return remapped
