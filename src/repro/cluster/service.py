"""The cluster execution backend for :class:`~repro.service.service.WhirlpoolService`.

The service's backend hook is duck-typed — anything with
``run_query(request, k, deadline_seconds, restore_from)``, ``health()``
and ``close()`` — so ``repro.service`` never imports this package (the
layer contract puts ``cluster`` *above* ``service``; the dependency
points down, and a cluster-backed service is assembled by the caller):

    backend = ClusterBackend({"auction": db}, shards=4)
    service = WhirlpoolService({"auction": db}, backend=backend)

One :class:`~repro.cluster.coordinator.Coordinator` is built lazily per
registered document handle and reused across requests — the expensive
parts (forest partitioning/serialization, per-query engine facades for
the global score model) amortize the same way the service's engine cache
does.  A coordinator serves one query at a time; concurrent service
workers contend by blocking on the coordinator's own idle condition
(:meth:`~repro.cluster.coordinator.Coordinator.wait_idle`, a progress
wait on the clock seam) — never on a lock held across subprocess I/O,
which keeps the package clean under the graph analyzer's
blocking-under-lock rule, and never by spin-polling, so a blocked
submit wakes the instant the slot frees.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Mapping, Optional

from repro.cluster.coordinator import ClusterResult, Coordinator
from repro.core.stats import monotonic_seconds
from repro.errors import ClusterError
from repro.faults.supervisor import RetryPolicy
from repro.obs import Observability
from repro.recovery.store import RecoveryStore
from repro.service.request import QueryRequest
from repro.xmldb.model import Database

#: How long a request waits for the coordinator slot when it carries no
#: deadline of its own.
_DEFAULT_SLOT_WAIT_SECONDS = 30.0


class ClusterBackend:
    """Route service queries to sharded coordinator clusters.

    Parameters mirror :class:`~repro.cluster.coordinator.Coordinator`;
    every document handle gets its own coordinator (lazily, on first
    query) built with the same tuning.
    """

    def __init__(
        self,
        documents: Optional[Mapping[str, Database]] = None,
        shards: int = 2,
        skew: float = 0.0,
        partition_seed: int = 0,
        step_operations: int = 200,
        rpc_timeout_seconds: float = 1.0,
        liveness_deadline_seconds: float = 4.0,
        heartbeat_interval_seconds: float = 1.0,
        max_failovers: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        recovery_store: Optional[RecoveryStore] = None,
        observability: Optional[Observability] = None,
        transport: str = "pipe",
    ) -> None:
        if shards < 1:
            raise ClusterError(f"shards must be >= 1, got {shards}")
        self._documents: Dict[str, Database] = dict(documents or {})
        self.shards = shards
        self.skew = skew
        self.partition_seed = partition_seed
        self.step_operations = step_operations
        self.rpc_timeout_seconds = rpc_timeout_seconds
        self.liveness_deadline_seconds = liveness_deadline_seconds
        self.heartbeat_interval_seconds = heartbeat_interval_seconds
        self.max_failovers = max_failovers
        self.retry_policy = retry_policy
        self.recovery_store = recovery_store
        self.transport = transport
        self.obs = observability if observability is not None else Observability.disabled()
        self._lock = threading.Lock()
        self._coordinators: Dict[str, Coordinator] = {}
        self._closed = False

    # -- the service-facing backend protocol -------------------------------------

    def run_query(
        self,
        request: QueryRequest,
        k: int,
        deadline_seconds: Optional[float] = None,
        restore_from: Optional[Dict[str, Any]] = None,
    ) -> ClusterResult:
        """Execute one admitted request on its document's cluster.

        ``restore_from`` (a single-process engine snapshot from the
        service's recovery envelope) is ignored: the cluster ships its
        own per-shard checkpoints through the coordinator's recovery
        store, and a recovered request simply re-executes — the anytime
        certificate, not the snapshot, is the contract that survives.
        """
        coordinator = self._coordinator_for(request.document)
        give_up = monotonic_seconds() + (
            deadline_seconds
            if deadline_seconds is not None
            else _DEFAULT_SLOT_WAIT_SECONDS
        )
        while True:
            try:
                return coordinator.run_query(
                    request.xpath,
                    k,
                    algorithm=request.algorithm,
                    relaxed=request.relaxed,
                    routing=request.routing,
                    deadline_seconds=deadline_seconds,
                    engine_faults=request.faults,
                    engine_retry_policy=request.retry_policy,
                )
            except ClusterError as exc:
                # Coordinator busy with another worker's query: block on
                # its idle condition until the slot frees (never a lock
                # held across the cluster's pipe I/O, never a spin
                # poll).  Everything else is a real error.
                if "one query at a time" not in str(exc):
                    raise
                remaining = give_up - monotonic_seconds()
                if remaining <= 0 or not coordinator.wait_idle(remaining):
                    raise ClusterError(
                        f"coordinator for {request.document!r} busy past deadline"
                    ) from exc

    def health(self) -> Dict[str, Any]:
        """Backend health: per-document coordinator fleets (satellite of
        the service's ``health()``; also surfaced by ``repro metrics``)."""
        with self._lock:
            coordinators = dict(self._coordinators)
            closed = self._closed
        return {
            "kind": "cluster",
            "shards": self.shards,
            "transport": self.transport,
            "closed": closed,
            "documents": {
                name: coordinator.health()
                for name, coordinator in sorted(coordinators.items())
            },
        }

    def close(self) -> None:
        """Shut down every coordinator's worker fleet (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            coordinators = list(self._coordinators.values())
        for coordinator in coordinators:
            coordinator.close()

    def __enter__(self) -> "ClusterBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- internals ---------------------------------------------------------------

    def register_document(self, name: str, database: Database) -> None:
        """Add (or replace) a document handle (mirrors the service API).

        Replacing a handle closes its existing coordinator; in-flight
        queries on it finish first (close waits on the query lock only
        in the sense that teardown kills workers — the active query then
        degrades, which is the documented replace-under-load behavior).
        """
        with self._lock:
            self._documents[name] = database
            stale = self._coordinators.pop(name, None)
        if stale is not None:
            stale.close()

    def _coordinator_for(self, document: str) -> Coordinator:
        with self._lock:
            if self._closed:
                raise ClusterError("cluster backend is closed")
            coordinator = self._coordinators.get(document)
            if coordinator is not None:
                return coordinator
            database = self._documents.get(document)
        if database is None:
            raise ClusterError(f"unknown document {document!r}")
        built = Coordinator(
            database,
            shards=self.shards,
            skew=self.skew,
            partition_seed=self.partition_seed,
            step_operations=self.step_operations,
            rpc_timeout_seconds=self.rpc_timeout_seconds,
            liveness_deadline_seconds=self.liveness_deadline_seconds,
            heartbeat_interval_seconds=self.heartbeat_interval_seconds,
            max_failovers=self.max_failovers,
            retry_policy=self.retry_policy,
            recovery_store=self.recovery_store,
            observability=self.obs,
            transport=self.transport,
        )
        with self._lock:
            cached = self._coordinators.setdefault(document, built)
        if cached is not built:
            built.close()
        return cached
