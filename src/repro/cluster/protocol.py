"""Length-prefixed JSON framing for coordinator ↔ worker pipes.

One frame = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  The encoding is deliberately the dumbest thing
that works: snapshots are already pickle-free JSON (:mod:`repro.recovery.codec`),
so the wire carries dictionaries end to end and a hex dump of the pipe
is readable with ``json.tool``.

Two read paths share the framing:

- :func:`read_frame` — blocking, used by the worker on its stdin; a
  clean EOF returns ``None`` (parent told us to go away or died).
- :class:`FrameReader` — coordinator side, ``select()``-driven reads
  against a deadline so a hung worker can never wedge the coordinator;
  a timeout raises :class:`FrameTimeout` *without* discarding partial
  bytes — the next call resumes mid-frame, which is what lets the
  retry ladder keep waiting for a slow worker's reply.
"""

from __future__ import annotations

import json
import os
import select
import struct
from typing import Any, BinaryIO, Dict, Optional

from repro.core.stats import monotonic_seconds
from repro.errors import ClusterError

#: Hard cap on one frame (snapshots of realistic partitions are ~KBs;
#: anything near this size is a protocol bug, not data).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameTimeout(ClusterError):
    """A :class:`FrameReader` deadline expired before a full frame
    arrived.  Partial bytes stay buffered; reading may be resumed."""


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialize one message to its on-wire bytes (header + JSON)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse a frame body back into a message dictionary."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ClusterError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ClusterError(f"frame payload must be an object, got {type(payload).__name__}")
    return payload


def write_frame(stream: BinaryIO, payload: Dict[str, Any]) -> None:
    """Write one message and flush (small frames; blocking is fine)."""
    stream.write(encode_frame(payload))
    stream.flush()


def read_frame(stream: BinaryIO) -> Optional[Dict[str, Any]]:
    """Blocking read of one message; ``None`` on clean EOF at a frame
    boundary (mid-frame EOF is a protocol error)."""
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise ClusterError("truncated frame header")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ClusterError(f"frame of {length} bytes exceeds MAX_FRAME_BYTES")
    body = b""
    while len(body) < length:
        chunk = stream.read(length - len(body))
        if not chunk:
            raise ClusterError("EOF mid-frame")
        body += chunk
    return decode_body(body)


class FrameReader:
    """Deadline-capable frame reads over a pipe file descriptor.

    Buffers whatever ``select`` hands us; :meth:`read` assembles at most
    one frame per call.  All state is single-owner (the coordinator
    thread driving this shard), so there is no locking here — the
    owning :class:`~repro.cluster.coordinator.ShardHandle` serializes
    access.
    """

    __slots__ = ("_fd", "_buffer", "_eof")

    def __init__(self, fd: int) -> None:
        self._fd = fd
        self._buffer = bytearray()
        self._eof = False

    def _fill(self, deadline_at: Optional[float]) -> None:
        """Pull available bytes, waiting until ``deadline_at`` at most."""
        if self._eof:
            raise ClusterError("read past EOF")
        timeout: Optional[float] = None
        if deadline_at is not None:
            timeout = max(0.0, deadline_at - monotonic_seconds())
        readable, _, _ = select.select([self._fd], [], [], timeout)
        if not readable:
            raise FrameTimeout("no frame within deadline")
        # Bounded read keeps one giant frame from monopolizing the call;
        # the loop in read() comes back for the rest.
        chunk = _read_fd(self._fd)
        if not chunk:
            self._eof = True
            return
        self._buffer.extend(chunk)

    def read(self, deadline_at: Optional[float]) -> Optional[Dict[str, Any]]:
        """One message, or ``None`` on EOF at a frame boundary.

        Raises :class:`FrameTimeout` when ``deadline_at`` (monotonic
        seconds) passes first; buffered partial bytes are kept so a
        later call can finish the frame.
        """
        while True:
            if len(self._buffer) >= _HEADER.size:
                (length,) = _HEADER.unpack(bytes(self._buffer[: _HEADER.size]))
                if length > MAX_FRAME_BYTES:
                    raise ClusterError(
                        f"frame of {length} bytes exceeds MAX_FRAME_BYTES"
                    )
                if len(self._buffer) >= _HEADER.size + length:
                    body = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
                    del self._buffer[: _HEADER.size + length]
                    return decode_body(body)
            if self._eof:
                if self._buffer:
                    raise ClusterError("EOF mid-frame")
                return None
            self._fill(deadline_at)


def _read_fd(fd: int, size: int = 1 << 16) -> bytes:
    """``os.read`` isolated for monkeypatching in pipe-fault tests."""
    return os.read(fd, size)
