"""Integrity-checked JSON framing for coordinator ↔ worker links.

One frame = a fixed 14-byte header followed by a UTF-8 JSON body::

    >H  magic      0x5746 ("WF") — catches stream desync immediately
    >I  length     body bytes, hard-capped at MAX_FRAME_BYTES
    >I  seq        per-connection sender sequence number (1-based;
                   0 = unsequenced, never deduplicated)
    >I  crc32      CRC-32 of seq (big-endian) + body

The envelope is what lets the cluster trust a *hostile* link (PR 8):

- a flipped bit in the length prefix raises a typed
  :class:`~repro.errors.FrameTooLargeError` **before** any allocation —
  a corrupt 4-byte length can never drive an unbounded read;
- a flipped bit anywhere else fails the magic or CRC check and raises
  :class:`~repro.errors.FrameCorruptError` — framing cannot be resumed
  after corruption, so the connection is condemned and the transport
  layer reconnects (socket) or fails over (pipe);
- a duplicated frame re-arrives with the same ``seq`` and is silently
  dropped by the receiver (sequence numbers are per-connection and
  strictly increasing from each sender).

Two read paths share the decoder:

- :func:`read_frame` / :func:`read_frame_ex` — blocking, used by the
  worker on its stdin or socket stream; a clean EOF at a frame boundary
  returns ``None``.
- :class:`FrameReader` — coordinator side, ``select()``-driven reads
  against a deadline so a hung worker can never wedge the coordinator;
  a timeout raises :class:`FrameTimeout` *without* discarding partial
  bytes — the next call resumes mid-frame, which is what lets the
  retry ladder keep waiting for a slow worker's reply.
"""

from __future__ import annotations

import json
import os
import select
import struct
import zlib
from typing import Any, BinaryIO, Dict, Optional, Tuple

from repro.core.stats import monotonic_seconds
from repro.errors import (
    ClusterError,
    FrameCorruptError,
    FrameTooLargeError,
    ProtocolError,
)

#: Hard cap on one frame body (snapshots of realistic partitions are
#: ~KBs; anything near this size is a protocol bug, not data).  Enforced
#: on encode and — critically — on the *declared* length before any read.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Two magic bytes ("WF", Whirlpool Frame) opening every header.  A
#: reader positioned anywhere but a frame boundary fails this check
#: immediately instead of interpreting payload bytes as a length.
FRAME_MAGIC = 0x5746

_HEADER = struct.Struct(">HIII")
_SEQ = struct.Struct(">I")

#: Full header size in bytes (magic + length + seq + crc32).
HEADER_BYTES = _HEADER.size


class FrameTimeout(ClusterError):
    """A :class:`FrameReader` deadline expired before a full frame
    arrived.  Partial bytes stay buffered; reading may be resumed."""


def frame_crc(seq: int, body: bytes) -> int:
    """The integrity checksum carried by a frame: CRC-32 over the
    sequence number (big-endian) and the body bytes."""
    return zlib.crc32(body, zlib.crc32(_SEQ.pack(seq & 0xFFFFFFFF))) & 0xFFFFFFFF


def encode_frame(payload: Dict[str, Any], seq: int = 0) -> bytes:
    """Serialize one message to its on-wire bytes (header + JSON)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(len(body), MAX_FRAME_BYTES)
    return _HEADER.pack(FRAME_MAGIC, len(body), seq & 0xFFFFFFFF, frame_crc(seq, body)) + body


def decode_header(header: bytes) -> Tuple[int, int, int]:
    """Validate a 14-byte header; return ``(length, seq, crc)``.

    Raises the typed protocol errors — :class:`FrameCorruptError` on a
    magic mismatch, :class:`FrameTooLargeError` on an oversized declared
    length — without touching the body.
    """
    magic, length, seq, crc = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise FrameCorruptError(
            "bad_magic", f"bad frame magic 0x{magic:04x} (stream desync or corruption)"
        )
    if length > MAX_FRAME_BYTES:
        raise FrameTooLargeError(length, MAX_FRAME_BYTES)
    return length, seq, crc


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse a frame body back into a message dictionary."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("garbage", f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            "garbage", f"frame payload must be an object, got {type(payload).__name__}"
        )
    return payload


def write_frame(stream: BinaryIO, payload: Dict[str, Any], seq: int = 0) -> None:
    """Write one message and flush (small frames; blocking is fine)."""
    stream.write(encode_frame(payload, seq=seq))
    stream.flush()


def read_frame_ex(stream: BinaryIO) -> Optional[Tuple[Dict[str, Any], int]]:
    """Blocking read of one verified message; ``(payload, seq)``, or
    ``None`` on clean EOF at a frame boundary (mid-frame EOF is a
    :class:`~repro.errors.ProtocolError`)."""
    header = stream.read(HEADER_BYTES)
    if not header:
        return None
    if len(header) < HEADER_BYTES:
        raise ProtocolError("truncated", "truncated frame header")
    length, seq, crc = decode_header(header)
    body = b""
    while len(body) < length:
        chunk = stream.read(length - len(body))
        if not chunk:
            raise ProtocolError("truncated", "EOF mid-frame")
        body += chunk
    if frame_crc(seq, body) != crc:
        raise FrameCorruptError("crc_mismatch", "frame CRC mismatch")
    return decode_body(body), seq


def read_frame(stream: BinaryIO) -> Optional[Dict[str, Any]]:
    """Blocking read of one message; ``None`` on clean EOF at a frame
    boundary.  Sequence-number-blind — callers that need duplicate
    suppression use :func:`read_frame_ex` and track the sender sequence
    themselves (the worker serve loop does)."""
    result = read_frame_ex(stream)
    return None if result is None else result[0]


class FrameReader:
    """Deadline-capable, integrity-checking frame reads from a file
    descriptor (pipe or socket).

    Buffers whatever ``select`` hands us; :meth:`read` assembles at most
    one frame per call, verifies magic/length/CRC through the same typed
    errors as the blocking path, and silently drops duplicated frames
    (``seq`` at or below the highest already delivered).  All state is
    single-owner (the coordinator thread driving this shard), so there
    is no locking here — the owning transport serializes access.
    """

    __slots__ = ("_fd", "_buffer", "_eof", "_last_seq")

    def __init__(self, fd: int) -> None:
        self._fd = fd
        self._buffer = bytearray()
        self._eof = False
        self._last_seq = 0

    def _fill(self, deadline_at: Optional[float]) -> None:
        """Pull available bytes, waiting until ``deadline_at`` at most."""
        if self._eof:
            raise ClusterError("read past EOF")
        timeout: Optional[float] = None
        if deadline_at is not None:
            timeout = max(0.0, deadline_at - monotonic_seconds())
        readable, _, _ = select.select([self._fd], [], [], timeout)
        if not readable:
            raise FrameTimeout("no frame within deadline")
        # Bounded read keeps one giant frame from monopolizing the call;
        # the loop in read() comes back for the rest.  A reset connection
        # is EOF for framing purposes — there is nothing left to resync.
        try:
            chunk = _read_fd(self._fd)
        except OSError:
            chunk = b""
        if not chunk:
            self._eof = True
            return
        self._buffer.extend(chunk)

    def read(self, deadline_at: Optional[float]) -> Optional[Dict[str, Any]]:
        """One verified message, or ``None`` on EOF at a frame boundary.

        Raises :class:`FrameTimeout` when ``deadline_at`` (monotonic
        seconds) passes first; buffered partial bytes are kept so a
        later call can finish the frame.  Raises the typed
        :class:`~repro.errors.ProtocolError` family on corruption; a
        duplicated frame (stale ``seq``) is dropped, never returned.
        """
        while True:
            if len(self._buffer) >= HEADER_BYTES:
                length, seq, crc = decode_header(bytes(self._buffer[:HEADER_BYTES]))
                if len(self._buffer) >= HEADER_BYTES + length:
                    body = bytes(self._buffer[HEADER_BYTES : HEADER_BYTES + length])
                    del self._buffer[: HEADER_BYTES + length]
                    if frame_crc(seq, body) != crc:
                        raise FrameCorruptError("crc_mismatch", "frame CRC mismatch")
                    if seq and seq <= self._last_seq:
                        continue  # duplicated delivery: drop, keep reading
                    if seq:
                        self._last_seq = seq
                    return decode_body(body)
            if self._eof:
                if self._buffer:
                    raise ProtocolError("truncated", "EOF mid-frame")
                return None
            self._fill(deadline_at)


def _read_fd(fd: int, size: int = 1 << 16) -> bytes:
    """``os.read`` isolated for monkeypatching in pipe-fault tests."""
    return os.read(fd, size)
