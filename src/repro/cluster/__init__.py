"""Fault-tolerant sharded cluster execution for top-k XML queries.

The cluster layer partitions the document forest across N worker
subprocesses — each running a full single-process engine over its slice
(:mod:`repro.cluster.worker`) — and scatter-gathers their anytime top-k
streams through a coordinator (:mod:`repro.cluster.coordinator`) that
merges under a global threshold derived from per-shard ``pending_bound``
certificates (:mod:`repro.cluster.merge`).

Robustness is the design driver: heartbeat/liveness deadlines and a
retry/backoff ladder on every RPC, periodic checkpoint shipping into the
coordinator's :class:`~repro.recovery.store.RecoveryStore` so a killed or
hung worker fails over by respawn-and-restore (provably reproducing the
fault-free answer), and certified degraded answers — missing shards named,
global ``pending_bound`` still sound — when failover is exhausted.

See ``docs/cluster.md`` for the protocol, the failover state machine, and
the soundness argument.
"""

from repro.cluster.coordinator import ClusterResult, Coordinator, ShardHandle
from repro.cluster.merge import (
    MergedAnswer,
    dominated,
    global_pending_bound,
    kth_score,
    lost_shard_bound,
    merge_answers,
)
from repro.cluster.partition import (
    ShardSpec,
    build_shard_specs,
    partition_ordinals,
    remap_dewey,
    remap_match_payload,
)
from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    FrameReader,
    FrameTimeout,
    encode_frame,
    read_frame,
    write_frame,
)

__all__ = [
    "ClusterResult",
    "Coordinator",
    "ShardHandle",
    "MergedAnswer",
    "merge_answers",
    "kth_score",
    "dominated",
    "lost_shard_bound",
    "global_pending_bound",
    "ShardSpec",
    "build_shard_specs",
    "partition_ordinals",
    "remap_dewey",
    "remap_match_payload",
    "MAX_FRAME_BYTES",
    "FrameReader",
    "FrameTimeout",
    "encode_frame",
    "read_frame",
    "write_frame",
]
