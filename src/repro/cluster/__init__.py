"""Fault-tolerant sharded cluster execution for top-k XML queries.

The cluster layer partitions the document forest across N worker
subprocesses — each running a full single-process engine over its slice
(:mod:`repro.cluster.worker`) — and scatter-gathers their anytime top-k
streams through a coordinator (:mod:`repro.cluster.coordinator`) that
merges under a global threshold derived from per-shard ``pending_bound``
certificates (:mod:`repro.cluster.merge`).

Robustness is the design driver: CRC-checked, sequence-numbered frames
with a hard size cap over pluggable transports (pipe or TCP socket,
:mod:`repro.cluster.net`) with reconnect-and-idempotent-replay on the
socket path; heartbeat/liveness deadlines and a retry/backoff ladder on
every RPC; periodic checkpoint shipping into CRC-validated generations
(:class:`~repro.recovery.generations.CheckpointGenerations`) so a
killed or hung worker fails over by respawn-and-restore (provably
reproducing the fault-free answer) and a merely *slow* worker is
rebalanced off the same way; and certified degraded answers — missing
shards named, global ``pending_bound`` still sound — when failover is
exhausted.

See ``docs/cluster.md`` for the protocol, the transports, the failover
and connection state machines, and the soundness argument.
"""

from repro.cluster.coordinator import (
    CONNECTION_STATES,
    ClusterResult,
    Coordinator,
    ShardHandle,
)
from repro.cluster.merge import (
    MergedAnswer,
    dominated,
    global_pending_bound,
    kth_score,
    lost_shard_bound,
    merge_answers,
)
from repro.cluster.net import (
    TRANSPORTS,
    NetFaultArm,
    PipeTransport,
    SocketTransport,
    Transport,
    create_transport,
)
from repro.cluster.partition import (
    ShardSpec,
    build_shard_specs,
    partition_ordinals,
    remap_dewey,
    remap_match_payload,
)
from repro.cluster.protocol import (
    FRAME_MAGIC,
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameReader,
    FrameTimeout,
    encode_frame,
    frame_crc,
    read_frame,
    read_frame_ex,
    write_frame,
)

__all__ = [
    "CONNECTION_STATES",
    "ClusterResult",
    "Coordinator",
    "ShardHandle",
    "MergedAnswer",
    "merge_answers",
    "kth_score",
    "dominated",
    "lost_shard_bound",
    "global_pending_bound",
    "TRANSPORTS",
    "NetFaultArm",
    "PipeTransport",
    "SocketTransport",
    "Transport",
    "create_transport",
    "ShardSpec",
    "build_shard_specs",
    "partition_ordinals",
    "remap_dewey",
    "remap_match_payload",
    "FRAME_MAGIC",
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "FrameReader",
    "FrameTimeout",
    "encode_frame",
    "frame_crc",
    "read_frame",
    "read_frame_ex",
    "write_frame",
]
