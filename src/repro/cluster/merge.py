"""Global top-k merge and threshold algebra over per-shard streams.

This is the Fagin/TA-shaped heart of the cluster (ROADMAP item 1): each
shard is an independent source emitting (a) its current local top-k and
(b) a sound ``pending_bound`` certificate over everything it has not
reported.  Because document partitioning makes shard answer sets
*disjoint* (an answer's root lives in exactly one shard) and every shard
scores with the coordinator-shipped global contribution tables, the
global top-k over the forest is exactly the k best of the union of the
shard-local top-k's, under the engines' own total order
``(-score, dewey)`` (:meth:`repro.core.topk.TopKSet.answers`).

Soundness of early termination (mirrors ``TopKSet.is_pruned``'s strict
``<``): once the merged k-th score strictly dominates a shard's bound,
no unreported or future match from that shard can reach the global
top-k — a future score is ≤ the shard bound < the k-th score, and ties
never displace an incumbent.  The same algebra produces the degraded
certificate: for a *lost* shard the coordinator still holds its last
reported top-k and bound, so ``max(last bound, last k-th local score)``
bounds anything the dead worker knew that we do not.

Everything here is pure data-in/data-out — no processes, no locks — so
the differential tests can hammer it without spawning a cluster.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.xmldb.dewey import Dewey

#: One merged candidate: (global root Dewey, score, owning shard id).
MergedAnswer = Tuple[Dewey, float, int]


def merge_answers(
    per_shard: Dict[int, Sequence[Tuple[Dewey, float]]], k: int
) -> List[MergedAnswer]:
    """The k best answers across shards under ``(-score, dewey)``.

    ``per_shard`` maps shard id → that shard's current local top-k as
    (already remapped global root Dewey, score) pairs.  Roots are
    disjoint across shards by construction of the partition, so a plain
    sort of the union is the exact global order.
    """
    pool: List[MergedAnswer] = []
    for shard_id, answers in per_shard.items():
        for dewey, score in answers:
            pool.append((dewey, score, shard_id))
    pool.sort(key=lambda entry: (-entry[1], entry[0]))
    return pool[:k]


def kth_score(merged: Sequence[MergedAnswer], k: int) -> Optional[float]:
    """The merged k-th best score, or ``None`` while fewer than k
    answers exist (no threshold — nothing can be dominated yet)."""
    if len(merged) < k:
        return None
    return merged[k - 1][1]


def dominated(shard_bound: float, threshold: Optional[float]) -> bool:
    """May this shard still contribute to the global top-k?

    Strict ``<`` on purpose: at equality an unreported match could tie
    the current k-th answer, and although a tie never *displaces* an
    incumbent under ``(-score, dewey)``, the incumbent set itself is not
    final until every potential tie with a smaller Dewey is ruled out.
    Strictness keeps the certificate independent of arrival order.
    """
    return threshold is not None and shard_bound < threshold


def lost_shard_bound(
    last_pending_bound: Optional[float],
    last_answers: Optional[Sequence[Tuple[Dewey, float]]],
    k: int,
    max_total: float,
) -> float:
    """Sound upper bound on any answer a lost shard could still hold.

    - Never heard from it → ``max_total`` (no complete match can score
      above the sum of per-node maximum contributions).
    - Otherwise: unprocessed work is bounded by its last
      ``pending_bound``; already-processed-but-unreported roots (beyond
      its local top-k) are bounded by its k-th reported score (a local
      top-k with fewer than k entries reported *everything* it had).
    """
    if last_pending_bound is None or last_answers is None:
        return max_total
    kth_local = last_answers[k - 1][1] if len(last_answers) >= k else 0.0
    return max(last_pending_bound, kth_local)


def global_pending_bound(
    live_bounds: Sequence[float], lost_bounds: Sequence[float]
) -> float:
    """The cluster-wide anytime certificate: no unreported answer —
    queued on a live shard or stranded on a lost one — can score above
    this."""
    bounds = [*live_bounds, *lost_bounds]
    return max(bounds) if bounds else 0.0
