"""Checkpoint/resume and crash recovery for long-running top-k queries.

The anytime property that lets Whirlpool degrade gracefully (best-known
top-k plus a ``pending_bound`` certificate) also makes its progress
*checkpointable*: the queued partial matches, the top-k set, and the
counters are the whole run state.  This package turns that observation
into machinery:

- :mod:`~repro.recovery.codec` — versioned, pickle-free snapshot
  encode/decode (Dewey-id node references, quality strings, recomputed
  bounds);
- :mod:`~repro.recovery.policy` — :class:`CheckpointPolicy` deciding
  *when* engines snapshot (every N operations / approaching deadline /
  after faults);
- :mod:`~repro.recovery.store` — :class:`RecoveryStore` backends
  (in-memory, JSON files) keyed by request id for the service layer's
  drain / crash / restart story;
- :mod:`~repro.recovery.generations` — :class:`CheckpointGenerations`
  layering last-N CRC-validated snapshots over any store, so restore
  can fall back past a corrupted newest checkpoint (the cluster
  coordinator's failover/rebalancing path rides this).

The engine-side hooks live on :class:`repro.core.base.EngineBase`
(``checkpoint()`` / ``restore()``); the service-side re-admission lives
in :meth:`repro.service.WhirlpoolService.recover`.
"""

from repro.recovery.codec import (
    SNAPSHOT_VERSION,
    decode_match,
    encode_engine_state,
    encode_match,
    restore_engine_state,
    validate_snapshot,
)
from repro.recovery.generations import CheckpointGenerations, snapshot_crc
from repro.recovery.policy import CheckpointPolicy
from repro.recovery.store import (
    JsonFileRecoveryStore,
    MemoryRecoveryStore,
    RecoveryStore,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "CheckpointGenerations",
    "CheckpointPolicy",
    "JsonFileRecoveryStore",
    "MemoryRecoveryStore",
    "RecoveryStore",
    "decode_match",
    "encode_engine_state",
    "encode_match",
    "restore_engine_state",
    "snapshot_crc",
    "validate_snapshot",
]
