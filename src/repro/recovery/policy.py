"""When to checkpoint — operation-count, deadline, and fault triggers.

A :class:`CheckpointPolicy` is consulted by the engines at their natural
quiesce points (loop top for the single-threaded engines, the barrier
windows of Whirlpool-M) against the run's
:class:`~repro.core.stats.ExecutionStats`:

- **every_operations=N** — a checkpoint becomes due every time the run
  completes another N server operations since the last one;
- **deadline_fraction=f** — one checkpoint becomes due once elapsed time
  crosses ``f × deadline_seconds``, so a run about to degrade leaves a
  resumable snapshot behind before the budget expires;
- **on_fault=True** — a checkpoint becomes due whenever supervised
  errors or injected faults have fired since the last one (the state
  most worth protecting is the state that is already under attack).

Policies are cheap, mutable, single-run objects: the engine marks them
after each checkpoint.  Long-lived holders (the query service) keep one
configured instance and call :meth:`fresh` per run.
"""

from __future__ import annotations

from typing import Optional

from repro.core.stats import ExecutionStats
from repro.errors import RecoveryError


class CheckpointPolicy:
    """Decides when an engine should serialize a recovery snapshot."""

    def __init__(
        self,
        every_operations: Optional[int] = None,
        deadline_fraction: Optional[float] = None,
        on_fault: bool = False,
    ) -> None:
        if every_operations is not None and every_operations <= 0:
            raise RecoveryError(
                f"every_operations must be positive, got {every_operations}"
            )
        if deadline_fraction is not None and not 0.0 < deadline_fraction <= 1.0:
            raise RecoveryError(
                f"deadline_fraction must be in (0, 1], got {deadline_fraction}"
            )
        if every_operations is None and deadline_fraction is None and not on_fault:
            raise RecoveryError(
                "CheckpointPolicy needs at least one trigger: "
                "every_operations, deadline_fraction, or on_fault"
            )
        self.every_operations = every_operations
        self.deadline_fraction = deadline_fraction
        self.on_fault = on_fault
        self._last_operations = 0
        self._last_fault_events = 0
        self._deadline_fired = False

    def fresh(self) -> "CheckpointPolicy":
        """A new policy with the same triggers and pristine state."""
        return CheckpointPolicy(
            every_operations=self.every_operations,
            deadline_fraction=self.deadline_fraction,
            on_fault=self.on_fault,
        )

    def due(
        self,
        stats: ExecutionStats,
        deadline_seconds: Optional[float] = None,
        fault_events: int = 0,
    ) -> bool:
        """True when any configured trigger has fired since the last mark."""
        if (
            self.every_operations is not None
            and stats.server_operations - self._last_operations
            >= self.every_operations
        ):
            return True
        if (
            self.deadline_fraction is not None
            and deadline_seconds is not None
            and not self._deadline_fired
            and stats.elapsed_seconds()
            >= self.deadline_fraction * deadline_seconds
        ):
            return True
        if self.on_fault and fault_events > self._last_fault_events:
            return True
        return False

    def mark(
        self,
        stats: ExecutionStats,
        deadline_seconds: Optional[float] = None,
        fault_events: int = 0,
    ) -> None:
        """Record that a checkpoint was just taken at this progress point."""
        self._last_operations = stats.server_operations
        self._last_fault_events = fault_events
        if (
            self.deadline_fraction is not None
            and deadline_seconds is not None
            and stats.elapsed_seconds()
            >= self.deadline_fraction * deadline_seconds
        ):
            self._deadline_fired = True

    def __repr__(self) -> str:
        parts = []
        if self.every_operations is not None:
            parts.append(f"every_operations={self.every_operations}")
        if self.deadline_fraction is not None:
            parts.append(f"deadline_fraction={self.deadline_fraction}")
        if self.on_fault:
            parts.append("on_fault=True")
        return f"CheckpointPolicy({', '.join(parts)})"
