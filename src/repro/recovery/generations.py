"""Checkpoint generations: keep the last N *validated* snapshots.

A single-slot store (key → latest snapshot) has a blind spot the
cluster's hostile-network work exposed: if the newest checkpoint is
corrupted — torn on disk, damaged in flight, or truncated by a crash —
restore has nothing to fall back to and the whole run restarts from
zero.  :class:`CheckpointGenerations` closes that gap by layering a
small ring of generations over any :class:`~repro.recovery.store.RecoveryStore`:

- ``save`` appends ``{"generation", "crc", "snapshot"}`` and trims to
  the newest ``keep`` entries, where ``crc`` is a CRC-32 over the
  snapshot's canonical JSON form;
- ``load`` walks newest → oldest and returns the first snapshot whose
  CRC still matches, skipping (and counting) corrupt entries.

Falling back to an *older* generation is always safe for the cluster:
shard steps are deterministic, so restoring an earlier checkpoint just
replays the operations in between and lands on the same state — the
bit-identical-answer guarantee survives, only some work is redone.
"""

from __future__ import annotations

import json
import threading
import zlib
from typing import Any, Dict, List, Optional

from repro.errors import RecoveryError
from repro.recovery.store import RecoveryStore


def snapshot_crc(snapshot: Dict[str, Any]) -> int:
    """CRC-32 over the snapshot's canonical JSON encoding (sorted keys,
    no whitespace) — stable across save/load round trips."""
    text = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class CheckpointGenerations:
    """Last-``keep`` validated checkpoints per key, over any store.

    The lock guards an in-memory copy of each key's generation ring; the
    store write happens *outside* the lock (never hold a lock across
    file I/O — the graph analyzer's WPLG02 rule).  Concurrent savers of
    the same key may therefore land their store writes out of order, but
    every write carries the full ring, so the next save self-heals; the
    cluster saves each shard's key from a single query thread anyway.
    """

    def __init__(self, store: RecoveryStore, keep: int = 3) -> None:
        if keep < 1:
            raise RecoveryError(f"keep must be >= 1, got {keep}")
        self.store = store
        self.keep = keep
        self._lock = threading.Lock()
        self._rings: Dict[str, List[Dict[str, Any]]] = {}

    def _entries(self, key: str) -> List[Dict[str, Any]]:
        payload = self.store.load(key)
        if payload is None:
            return []
        entries = payload.get("generations")
        if not isinstance(entries, list):
            # A pre-generations single snapshot: treat it as generation 0
            # so upgrades never lose an existing checkpoint.
            return [
                {"generation": 0, "crc": snapshot_crc(payload), "snapshot": payload}
            ]
        return entries

    def save(self, key: str, snapshot: Dict[str, Any]) -> None:
        """Append ``snapshot`` as the newest generation and trim."""
        # Prime the in-memory ring from the store on first touch, with
        # the store read outside the lock.
        with self._lock:
            primed = key in self._rings
        loaded = None if primed else self._entries(key)
        entry = {
            "generation": 0,
            "crc": snapshot_crc(snapshot),
            "snapshot": snapshot,
        }
        with self._lock:
            ring = self._rings.setdefault(key, loaded or [])
            entry["generation"] = 1 + max(
                (int(existing.get("generation", 0)) for existing in ring), default=-1
            )
            ring.append(entry)
            del ring[: -self.keep]
            payload = {"generations": list(ring)}
        self.store.save(key, payload)

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The newest snapshot whose CRC validates, or ``None``."""
        for entry in reversed(self._entries(key)):
            snapshot = entry.get("snapshot")
            if not isinstance(snapshot, dict):
                continue
            if snapshot_crc(snapshot) == int(entry.get("crc", -1)):
                return snapshot
        return None

    def generations(self, key: str) -> List[int]:
        """Stored generation numbers for ``key``, oldest first."""
        return [int(entry.get("generation", 0)) for entry in self._entries(key)]

    def delete(self, key: str) -> None:
        with self._lock:
            self._rings.pop(key, None)
        self.store.delete(key)
