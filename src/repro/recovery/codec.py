"""Versioned, pickle-free snapshot codec for engine state.

Whirlpool's anytime semantics mean a run's complete progress is captured
by three things: the partial matches still queued, the current top-k set,
and the counters behind the ``pending_bound`` certificate.  This module
serializes exactly that — and nothing executable — into plain
JSON-compatible dictionaries:

- a :class:`~repro.core.match.PartialMatch` becomes its root's Dewey id,
  a node-id → Dewey-id (or ``null`` for leaf-deletion) instantiation map,
  the per-node :class:`~repro.scoring.model.MatchQuality` values, the
  visited set, and the score.  The upper bound is *not* stored: it is
  recomputed from the restoring engine's score model, so a snapshot can
  never smuggle in a stale or forged bound;
- the top-k set becomes its per-entry representative matches; restore
  replays :meth:`~repro.core.topk.TopKSet.observe` on the decoded copies,
  which reconstructs every entry score and the pruning threshold exactly;
- queue contents are captured per label (``"router"``, ``"server:<id>"``,
  ``"loose"``) but restore deliberately does not require the same engine
  shape: any queued match can be re-routed, so a Whirlpool-M snapshot can
  resume under Whirlpool-S or LockStep.

Why not ``pickle``?  Snapshots outlive the process that wrote them (the
JSON-file :class:`~repro.recovery.store.RecoveryStore` backend exists for
exactly that), and unpickling persisted bytes executes arbitrary
constructors.  Lint rule WPL009 enforces this choice repo-wide.

Every snapshot carries ``version``; :func:`restore_engine_state` rejects
anything it does not understand instead of guessing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

from repro.core.match import PartialMatch
from repro.errors import RecoveryError
from repro.scoring.model import MatchQuality
from repro.xmldb.dewey import Dewey, dewey_str, parse_dewey
from repro.xmldb.model import XMLNode

if TYPE_CHECKING:
    from repro.core.base import EngineBase
    from repro.core.queues import MatchQueue

SNAPSHOT_VERSION = 1
"""Bump on any incompatible change to the snapshot shape."""

Resolver = Callable[[Dewey], Optional[XMLNode]]


def encode_match(match: PartialMatch) -> Dict[str, Any]:
    """One partial match as a JSON-compatible dictionary."""
    return {
        "root": dewey_str(match.root_node.dewey),
        "instantiations": {
            str(node_id): None if node is None else dewey_str(node.dewey)
            for node_id, node in match.instantiations.items()
        },
        "qualities": {
            str(node_id): quality.value
            for node_id, quality in match.qualities.items()
        },
        "visited": sorted(match.visited),
        "score": match.score,
    }


def decode_match(
    payload: Dict[str, Any],
    resolve: Resolver,
    max_contributions: Dict[int, float],
) -> PartialMatch:
    """Rebuild a partial match, reattaching nodes through ``resolve``.

    The decoded match gets a fresh ``match_id``/``arrival`` (those are
    process-local queue tiebreakers, not semantics) and a freshly
    recomputed upper bound.
    """
    root_dewey = parse_dewey(payload["root"])
    root = resolve(root_dewey)
    if root is None:
        raise RecoveryError(
            f"snapshot references unknown root node {payload['root']!r}"
        )
    instantiations: Dict[int, Optional[XMLNode]] = {}
    for key, value in payload["instantiations"].items():
        if value is None:
            instantiations[int(key)] = None
            continue
        node = resolve(parse_dewey(value))
        if node is None:
            raise RecoveryError(f"snapshot references unknown node {value!r}")
        instantiations[int(key)] = node
    qualities = {
        int(key): MatchQuality(value)
        for key, value in payload["qualities"].items()
    }
    match = PartialMatch(
        root_node=root,
        instantiations=instantiations,
        qualities=qualities,
        visited=frozenset(int(node_id) for node_id in payload["visited"]),
        score=float(payload["score"]),
    )
    match.refresh_bound(max_contributions)
    return match


_STATS_FIELDS = (
    "server_operations",
    "join_comparisons",
    "partial_matches_created",
    "partial_matches_pruned",
    "extensions_generated",
    "deleted_extensions",
    "completed_matches",
    "routing_decisions",
    "checkpoints_taken",
)


def encode_engine_state(
    engine: "EngineBase",
    queues: Dict[str, "MatchQueue"],
    loose: Sequence[PartialMatch] = (),
) -> Dict[str, Any]:
    """Snapshot a (quiesced) engine: queues, top-k set, counters, bound.

    ``queues`` maps labels to live queues (read non-destructively via
    :meth:`~repro.core.queues.MatchQueue.snapshot`); ``loose`` covers
    matches an engine holds outside any queue (LockStep's survivor list).
    ``pending_bound`` is the largest upper bound among the captured
    matches — the certificate the snapshot itself honours: no answer the
    crashed run had not yet reported can score above it.
    """
    queued: Dict[str, List[Dict[str, Any]]] = {}
    pending_bound = 0.0
    for label, queue in queues.items():
        matches = queue.snapshot()
        queued[label] = [encode_match(match) for match in matches]
        for match in matches:
            pending_bound = max(pending_bound, match.upper_bound)
    if loose:
        queued["loose"] = [encode_match(match) for match in loose]
        for match in loose:
            pending_bound = max(pending_bound, match.upper_bound)
    topk_entries = []
    for match, complete_match in engine.topk.export_state():
        topk_entries.append(
            {
                "match": encode_match(match),
                "complete": None
                if complete_match is None
                else encode_match(complete_match),
            }
        )
    stats = engine.stats.as_dict()
    payload = {
        "version": SNAPSHOT_VERSION,
        "algorithm": engine.algorithm,
        "k": engine.k,
        "relaxed": engine.relaxed,
        "pattern": engine.pattern.to_xpath(),
        "operations": int(stats["server_operations"]),
        "pending_bound": pending_bound,
        "queues": queued,
        "topk": topk_entries,
        "router": {"strategy": type(engine.router).__name__},
        "stats": {field: int(stats[field]) for field in _STATS_FIELDS},
    }
    # Work the crashed run had *already lost* before this checkpoint —
    # injector-dropped operations and matches abandoned after exhausted
    # recovery.  The queued matches above do not cover it (a dropped
    # match is gone from every queue), so without this record a restore
    # would resume into a run that claims exactness over answers it can
    # never produce.  Written only when non-empty so pre-existing
    # snapshots keep their shape byte-for-byte.
    lost: Dict[str, Any] = {}
    injector = engine.fault_injector
    if injector is not None and injector.dropped_count() > 0:
        lost["dropped_operations"] = injector.dropped_count()
        lost["dropped_bound"] = injector.max_dropped_bound()
    abandoned = engine.supervisor.abandoned()
    if abandoned:
        lost["abandoned_matches"] = len(abandoned)
        lost["abandoned_bound"] = engine.supervisor.max_abandoned_bound()
    if lost:
        payload["lost"] = lost
    return payload


def validate_snapshot(snapshot: Dict[str, Any], engine: "EngineBase") -> None:
    """Reject snapshots this engine cannot faithfully resume."""
    if not isinstance(snapshot, dict):
        raise RecoveryError(f"snapshot must be a dict, got {type(snapshot).__name__}")
    version = snapshot.get("version")
    if version != SNAPSHOT_VERSION:
        raise RecoveryError(
            f"unsupported snapshot version {version!r} "
            f"(this codec reads version {SNAPSHOT_VERSION})"
        )
    if snapshot.get("k") != engine.k:
        raise RecoveryError(
            f"snapshot was taken with k={snapshot.get('k')!r}, "
            f"engine runs k={engine.k}"
        )
    if snapshot.get("pattern") != engine.pattern.to_xpath():
        raise RecoveryError(
            f"snapshot pattern {snapshot.get('pattern')!r} does not match "
            f"engine pattern {engine.pattern.to_xpath()!r}"
        )
    if bool(snapshot.get("relaxed")) != engine.relaxed:
        raise RecoveryError(
            f"snapshot relaxed={snapshot.get('relaxed')!r} does not match "
            f"engine relaxed={engine.relaxed}"
        )


def restore_engine_state(
    snapshot: Dict[str, Any], engine: "EngineBase"
) -> List[PartialMatch]:
    """Replay a snapshot into a fresh engine; return the queued matches.

    Validates, replays the top-k entries through ``observe`` (so the
    threshold is live before the first restored match is processed),
    folds the crashed run's operation counters into the fresh stats
    bundle, and returns the decoded queue contents (all labels folded —
    the resuming engine re-routes them however it likes).
    """
    validate_snapshot(snapshot, engine)
    database = engine.index.database
    resolve: Resolver = database.node_by_dewey
    max_contributions = engine.max_contributions
    for entry in snapshot.get("topk", []):
        match = decode_match(entry["match"], resolve, max_contributions)
        engine.topk.observe(match, complete=match.is_complete(engine.server_ids))
        complete_payload = entry.get("complete")
        if complete_payload is not None:
            complete_match = decode_match(
                complete_payload, resolve, max_contributions
            )
            engine.topk.observe(complete_match, complete=True)
    matches: List[PartialMatch] = []
    for payloads in snapshot.get("queues", {}).values():
        for payload in payloads:
            matches.append(decode_match(payload, resolve, max_contributions))
    counters = snapshot.get("stats", {})
    if counters:
        carried = type(engine.stats)()
        for field in _STATS_FIELDS:
            setattr(carried, field, int(counters.get(field, 0)))
        engine.stats.merge(carried)
    lost = snapshot.get("lost")
    if lost:
        engine.carried_loss = {
            "bound": max(
                float(lost.get("dropped_bound", 0.0)),
                float(lost.get("abandoned_bound", 0.0)),
            ),
            "detail": dict(lost),
        }
    return matches
