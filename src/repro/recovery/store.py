"""Snapshot persistence — in-memory and JSON-file backends.

A :class:`RecoveryStore` maps request ids to the latest snapshot payload
for that request.  The service layer writes through it from worker
threads and reads it back during :meth:`~repro.service.WhirlpoolService.recover`,
so both backends are thread-safe (and on the race detector's watch list).

:class:`MemoryRecoveryStore` covers in-process restarts and tests;
:class:`JsonFileRecoveryStore` covers the real story — a killed process
leaves ``<key>.json`` files behind, and the next process recovers them.
File writes go through a temp-file + :func:`os.replace` so a crash
mid-write can never leave a torn snapshot (a reader sees the old file or
the new one, nothing in between).  Payloads are plain JSON produced by
the :mod:`repro.recovery.codec`; nothing here ever evaluates stored
bytes (WPL009: no pickle).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional

from repro.errors import RecoveryError

_KEY_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."
)


def _check_key(key: str) -> str:
    if not key or not set(key) <= _KEY_SAFE or key.startswith("."):
        raise RecoveryError(
            f"invalid recovery key {key!r}: use letters, digits, '-', '_', '.'"
        )
    return key


class RecoveryStore:
    """Abstract keyed snapshot store (request id → snapshot dict)."""

    def save(self, key: str, snapshot: Dict[str, Any]) -> None:
        """Persist (or overwrite) the snapshot for ``key``."""
        raise NotImplementedError

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored snapshot, or ``None`` when absent."""
        raise NotImplementedError

    def delete(self, key: str) -> None:
        """Forget ``key``; no-op when absent."""
        raise NotImplementedError

    def keys(self) -> List[str]:
        """All stored keys, sorted."""
        raise NotImplementedError

    def count(self) -> int:
        """Number of stored snapshots."""
        return len(self.keys())


class MemoryRecoveryStore(RecoveryStore):
    """Dict-backed store for tests and single-process restarts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshots: Dict[str, Dict[str, Any]] = {}

    def save(self, key: str, snapshot: Dict[str, Any]) -> None:
        _check_key(key)
        # Round-trip through JSON so the memory backend rejects exactly
        # what the file backend would reject (no accidental live objects).
        payload = json.loads(json.dumps(snapshot))
        with self._lock:
            self._snapshots[key] = payload

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            snapshot = self._snapshots.get(key)
        return None if snapshot is None else json.loads(json.dumps(snapshot))

    def delete(self, key: str) -> None:
        with self._lock:
            self._snapshots.pop(key, None)

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._snapshots)


class JsonFileRecoveryStore(RecoveryStore):
    """Directory-of-JSON-files store that survives process death.

    All file I/O happens **outside** the lock (WPLG02): the lock's only
    job is handing each writer a unique temp-file sequence number.
    Correctness never depended on serializing the I/O — every write
    lands in its own ``<key>.json.<pid>.<seq>.tmp`` and is published by
    an atomic :func:`os.replace`, so concurrent savers of the same key
    race only at the rename (last writer wins, both files complete) and
    readers always see a whole old or whole new snapshot.  ``load`` /
    ``delete`` / ``keys`` are single atomic syscalls per call and take
    no lock at all.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self._lock = threading.Lock()
        self._tmp_seq = 0
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{_check_key(key)}.json")

    def save(self, key: str, snapshot: Dict[str, Any]) -> None:
        path = self._path(key)
        text = json.dumps(snapshot, sort_keys=True)
        with self._lock:
            self._tmp_seq += 1
            seq = self._tmp_seq
        tmp = f"{path}.{os.getpid()}.{seq}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RecoveryError(f"corrupt snapshot file {path}: {exc}") from exc
        if not isinstance(payload, dict):
            raise RecoveryError(f"snapshot file {path} does not hold an object")
        return payload

    def delete(self, key: str) -> None:
        try:
            os.remove(self._path(key))
        except FileNotFoundError:
            pass

    def keys(self) -> List[str]:
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        return sorted(
            name[: -len(".json")] for name in names if name.endswith(".json")
        )
