"""End-to-end observability: metrics registry, request spans, slow-query log.

Three pieces, one switch:

- :class:`~repro.obs.metrics.MetricsRegistry` — lock-striped counters,
  gauges and histograms with Prometheus-text and JSON export;
- :class:`~repro.obs.spans.Span` — per-request timing trees threaded
  service → engine;
- :class:`~repro.obs.slowlog.SlowQueryLog` — bounded ring of over-budget
  requests with their full routing history.

:class:`Observability` bundles them into the single configuration object
:class:`~repro.service.service.WhirlpoolService` accepts.  Disabled (the
default for embedding), every hot-path hook degrades to an ``is None``
guard or a shared no-op instrument — the overhead benchmark
(``benchmarks/bench_obs_overhead.py``) bounds the cost.  See
``docs/observability.md``.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.observer import MetricsEngineObserver, record_run
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog, routing_history
from repro.obs.spans import Span, SpanEvent

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsEngineObserver",
    "MetricsRegistry",
    "Observability",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "SpanEvent",
    "record_run",
    "routing_history",
]


class Observability:
    """Bundle of registry + slow-query log handed to the query service.

    Parameters
    ----------
    enabled:
        Master switch.  ``False`` (the embedding default) makes the
        registry hand out no-op instruments and drops span / slow-log
        collection entirely.
    registry:
        Bring-your-own :class:`MetricsRegistry` (e.g. shared across
        services); built to match ``enabled`` when omitted.
    slow_query_seconds:
        Latency budget; requests at or over it land in the slow-query
        log with their routing history.
    slow_query_capacity:
        Ring size of the slow-query log.
    stripes:
        Stripe-lock count for a registry built here.
    """

    def __init__(
        self,
        enabled: bool = True,
        registry: Optional[MetricsRegistry] = None,
        slow_query_seconds: float = 0.25,
        slow_query_capacity: int = 32,
        stripes: int = 8,
    ) -> None:
        self.enabled = enabled
        self.registry = (
            registry
            if registry is not None
            else MetricsRegistry(enabled=enabled, stripes=stripes)
        )
        self.slow_log: Optional[SlowQueryLog] = (
            SlowQueryLog(slow_query_seconds, slow_query_capacity) if enabled else None
        )

    @classmethod
    def disabled(cls) -> "Observability":
        """The no-op configuration (shared-instrument registry, no log)."""
        return cls(enabled=False)

    def engine_observer(
        self, algorithm: str, routing: str
    ) -> Optional[MetricsEngineObserver]:
        """A per-run metrics observer, or ``None`` when disabled."""
        if not self.enabled:
            return None
        return MetricsEngineObserver(self.registry, algorithm, routing)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Observability({state})"
