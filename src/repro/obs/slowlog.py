"""The slow-query log: full routing history for over-budget requests.

Aggregate histograms say *that* tail latency exists; the slow-query log
says *why*, per offending request.  When a request's end-to-end latency
(admission → terminal outcome) exceeds the configured budget, the
service captures a :class:`SlowQueryEntry` holding the request identity,
the span tree, and — because the paper's whole argument is that routing
*is* the behaviour — the complete routing history of the run: every
route decision the engine's observer saw, in order, with the top-k
threshold at decision time.

The log is a bounded ring (oldest entries evicted) so a misbehaving
workload cannot turn diagnostics into a memory leak, mirroring the
bounded-admission discipline of the service itself (WPL007).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.core.trace import ExecutionTrace
from repro.errors import ReproError
from repro.obs.spans import Span


class SlowQueryEntry:
    """One over-budget request with its routing history."""

    __slots__ = (
        "request_id",
        "document",
        "xpath",
        "algorithm",
        "routing",
        "outcome",
        "latency_seconds",
        "queue_wait_seconds",
        "routing_history",
        "span",
    )

    def __init__(
        self,
        request_id: int,
        document: str,
        xpath: str,
        algorithm: str,
        routing: str,
        outcome: str,
        latency_seconds: float,
        queue_wait_seconds: float,
        routing_history: List[Dict[str, Any]],
        span: Optional[Span] = None,
    ) -> None:
        self.request_id = request_id
        self.document = document
        self.xpath = xpath
        self.algorithm = algorithm
        self.routing = routing
        self.outcome = outcome
        self.latency_seconds = latency_seconds
        self.queue_wait_seconds = queue_wait_seconds
        self.routing_history = routing_history
        self.span = span

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (span tree included)."""
        return {
            "request_id": self.request_id,
            "document": self.document,
            "xpath": self.xpath,
            "algorithm": self.algorithm,
            "routing": self.routing,
            "outcome": self.outcome,
            "latency_seconds": self.latency_seconds,
            "queue_wait_seconds": self.queue_wait_seconds,
            "routing_history": list(self.routing_history),
            "span": self.span.as_dict() if self.span is not None else None,
        }

    def describe(self) -> str:
        """Readable multi-line rendering (CLI / debugging)."""
        lines = [
            f"request #{self.request_id} {self.document}:{self.xpath!r} "
            f"[{self.algorithm}/{self.routing}] {self.outcome} "
            f"in {self.latency_seconds:.4f}s "
            f"(queued {self.queue_wait_seconds:.4f}s)",
        ]
        for step in self.routing_history:
            lines.append(
                f"  #{step['seq']:<5} match {step['match_id']} -> "
                f"server {step['server_id']} "
                f"(bound={step['bound']:.3f}, threshold={step['threshold']:.3f})"
            )
        if not self.routing_history:
            lines.append("  (no routing decisions recorded)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SlowQueryEntry(#{self.request_id}, {self.latency_seconds:.4f}s, "
            f"{len(self.routing_history)} routes)"
        )


def routing_history(trace: ExecutionTrace) -> List[Dict[str, Any]]:
    """Extract the ordered route decisions from an execution trace."""
    history: List[Dict[str, Any]] = []
    for event in list(trace.events):
        if event.kind != "route":
            continue
        history.append(
            {
                "seq": event.seq,
                "match_id": event.match_id,
                "server_id": event.server_id,
                "score": event.score,
                "bound": event.bound,
                "threshold": event.threshold,
            }
        )
    return history


class SlowQueryLog:
    """Bounded ring of :class:`SlowQueryEntry` records."""

    def __init__(self, budget_seconds: float = 0.25, capacity: int = 32) -> None:
        if budget_seconds < 0:
            raise ReproError(f"budget_seconds must be >= 0, got {budget_seconds}")
        if capacity < 1:
            raise ReproError(f"capacity must be >= 1, got {capacity}")
        self.budget_seconds = budget_seconds
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: Deque[SlowQueryEntry] = deque(maxlen=capacity)
        self._recorded = 0

    def over_budget(self, latency_seconds: float) -> bool:
        """Does a latency qualify for the log?"""
        return latency_seconds >= self.budget_seconds

    def record(self, entry: SlowQueryEntry) -> None:
        """Append one entry (evicting the oldest at capacity)."""
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1

    def entries(self) -> List[SlowQueryEntry]:
        """Current ring contents, oldest first."""
        with self._lock:
            return list(self._entries)

    def recorded_total(self) -> int:
        """Entries ever recorded (including evicted ones)."""
        with self._lock:
            return self._recorded

    def as_dicts(self) -> List[Dict[str, Any]]:
        """JSON-friendly list of the current entries."""
        return [entry.as_dict() for entry in self.entries()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SlowQueryLog(budget={self.budget_seconds:g}s, "
            f"{len(self)}/{self.capacity} entries)"
        )
