"""Bridging engine events into the metrics registry.

:class:`MetricsEngineObserver` is an :class:`~repro.core.trace.EngineObserver`
that turns the hot-path hooks (seed / route / extension / prune, plus the
queue-depth hook from :class:`~repro.core.queues.MatchQueue`) into counter
bumps and histogram samples.  All label children are resolved **once**, at
construction, so each hook call is a dict-free increment under a stripe
lock — the fixed per-event cost the overhead benchmark bounds.

:func:`record_run` is the cold-path complement: after an engine run
returns, it folds the run's :class:`~repro.core.stats.ExecutionStats`
counters and any :class:`~repro.faults.report.FailureReport` into per-run
aggregate metrics.  It runs once per request, so it resolves labels on the
fly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.match import PartialMatch
from repro.core.trace import EngineObserver
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.core.base import TopKResult

#: Top-k threshold histogram buckets — tf*idf scores normalise into low
#: single digits; the growth curve (Section 6.1.2's adaptivity driver) is
#: what the distribution makes visible.
THRESHOLD_BUCKETS: Tuple[float, ...] = (
    0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0, 1.5, 2.0, 4.0,
)

#: Queue-depth histogram buckets (entries, not seconds).
DEPTH_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 1000)


class MetricsEngineObserver(EngineObserver):
    """Per-run observer recording engine events against one registry.

    One instance is created per request (cheap: seven child lookups) with
    the request's ``algorithm`` / ``routing`` labels baked in, then
    attached to the engine — usually alongside an
    :class:`~repro.core.trace.ExecutionTrace` via
    :class:`~repro.core.trace.FanoutObserver`.
    """

    def __init__(
        self, registry: MetricsRegistry, algorithm: str, routing: str
    ) -> None:
        self.registry = registry
        events = registry.counter(
            "whirlpool_engine_events_total",
            "Engine observer events by kind.",
            labels=("event", "algorithm", "routing"),
        )
        self._seed = events.labels("seed", algorithm, routing)
        self._route = events.labels("route", algorithm, routing)
        self._prune = events.labels("prune", algorithm, routing)
        self._extension_alive = events.labels("extension_alive", algorithm, routing)
        self._extension_completed = events.labels(
            "extension_completed", algorithm, routing
        )
        self._extension_pruned = events.labels("extension_pruned", algorithm, routing)
        self._threshold = registry.histogram(
            "whirlpool_topk_threshold",
            "Top-k threshold observed at each routing decision.",
            labels=("algorithm", "routing"),
            buckets=THRESHOLD_BUCKETS,
        ).labels(algorithm, routing)
        self._depth_family = registry.histogram(
            "whirlpool_queue_depth",
            "Router/server queue depth sampled after each put.",
            labels=("site",),
            buckets=DEPTH_BUCKETS,
        )

    # -- hot-path hooks ----------------------------------------------------------

    def on_seed(self, match: PartialMatch, threshold: float) -> None:
        self._seed.inc()

    def on_route(self, match: PartialMatch, server_id: int, threshold: float) -> None:
        self._route.inc()
        self._threshold.observe(threshold)

    def on_extension(
        self,
        parent: PartialMatch,
        extension: PartialMatch,
        outcome: str,
        threshold: float,
    ) -> None:
        if outcome == "completed":
            self._extension_completed.inc()
        elif outcome == "pruned":
            self._extension_pruned.inc()
        else:
            self._extension_alive.inc()

    def on_prune(self, match: PartialMatch, threshold: float) -> None:
        self._prune.inc()

    def on_queue_depth(self, site: str, depth: int) -> None:
        self._depth_family.labels(site).observe(depth)


#: ExecutionStats attributes bridged into the per-run counter family.
_STAT_KINDS: Tuple[str, ...] = (
    "server_operations",
    "join_comparisons",
    "partial_matches_created",
    "partial_matches_pruned",
    "completed_matches",
    "routing_decisions",
)


def record_run(
    registry: MetricsRegistry,
    algorithm: str,
    routing: str,
    outcome: str,
    result: Optional["TopKResult"],
) -> None:
    """Fold one finished engine run into the registry (cold path).

    ``result`` may be ``None`` (rejected / evicted requests never ran an
    engine) — only the run counter is recorded then, by the caller's
    request-level metrics, so this becomes a no-op.
    """
    if not registry.enabled or result is None:
        return
    operations = registry.counter(
        "whirlpool_engine_operations_total",
        "ExecutionStats counters accumulated across runs.",
        labels=("kind", "algorithm", "routing"),
    )
    stats = result.stats.as_dict()
    for kind in _STAT_KINDS:
        value = stats.get(kind, 0)
        if value:
            operations.labels(kind, algorithm, routing).inc(value)
    registry.histogram(
        "whirlpool_engine_wall_seconds",
        "Engine wall-clock time per run.",
        labels=("algorithm", "routing", "outcome"),
    ).labels(algorithm, routing, outcome).observe(stats.get("wall_time_seconds", 0.0))
    if result.degraded:
        registry.counter(
            "whirlpool_degraded_runs_total",
            "Runs that returned best-known answers under a budget or faults.",
            labels=("algorithm",),
        ).labels(algorithm).inc()
    if result.failure is not None:
        failures = registry.counter(
            "whirlpool_engine_failures_total",
            "Failure-report counters accumulated across runs.",
            labels=("kind", "algorithm"),
        )
        for kind, count in result.failure.metric_counts().items():
            if count:
                failures.labels(kind, algorithm).inc(count)
