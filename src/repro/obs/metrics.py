"""The lock-striped metrics registry: counters, gauges, histograms.

Design constraints, in priority order:

1. **Near-zero overhead when disabled.**  A disabled registry hands out
   one shared no-op instrument per kind; a hot-path record is a single
   dynamic dispatch to an empty method, and integration points that can
   skip attaching an observer entirely (the service does) pay only an
   ``is None`` guard — the same shape as the fault-injection hooks.
2. **Bounded contention when enabled.**  Instead of one registry-wide
   lock (every worker thread serializing on every counter bump) or one
   lock per instrument child (thousands of locks for the race detector
   to track), the registry owns a small fixed array of *stripe* locks
   and assigns each labeled child a stripe by stable hash of its
   identity.  Two threads only contend when their instruments share a
   stripe.
3. **One export model.**  Everything renders both as Prometheus
   exposition text (:meth:`MetricsRegistry.prometheus_text`) and as a
   JSON-friendly dict (:meth:`MetricsRegistry.as_dict`), so the health
   endpoint, the CLI and the tests consume the same snapshot.

Naming follows Prometheus conventions: ``_total`` counters,
``_seconds`` durations, label sets kept low-cardinality (algorithm,
routing, outcome, event kind, queue site).
"""

from __future__ import annotations

import threading
from typing import Dict, Generic, Iterable, List, Sequence, Tuple, TypeVar, Union, cast

from repro.errors import ReproError

LabelValues = Tuple[str, ...]

#: Default latency buckets (seconds) — spans sub-millisecond engine runs
#: up to multi-second degraded requests.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ReproError(f"invalid metric name {name!r}")
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


def _render_labels(names: Sequence[str], values: LabelValues) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class Counter:
    """Monotone counter child (one label-value combination)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ReproError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    def value(self) -> float:
        """Current total."""
        with self._lock:
            return self._value


class Gauge:
    """Settable point-in-time value child."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the gauge down by ``amount``."""
        self.inc(-amount)

    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket histogram child (Prometheus semantics)."""

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, buckets: Tuple[float, ...]) -> None:
        self._lock = lock
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    def snapshot(self) -> Dict[str, Union[float, List[int]]]:
        """Cumulative bucket counts plus sum/count, taken atomically."""
        with self._lock:
            raw = list(self._counts)
            total_sum = self._sum
            total_count = self._count
        cumulative: List[int] = []
        running = 0
        for count in raw:
            running += count
            cumulative.append(running)
        return {"buckets": cumulative, "sum": total_sum, "count": total_count}


class _NullCounter(Counter):
    """Disabled-registry counter: every record is a no-op."""

    __slots__ = ()

    def __init__(self) -> None:  # no lock, never mutated
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def value(self) -> float:
        return 0.0


class _NullGauge(Gauge):
    __slots__ = ()

    def __init__(self) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def value(self) -> float:
        return 0.0


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, Union[float, List[int]]]:
        return {"buckets": [], "sum": 0.0, "count": 0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()

_Child = Union[Counter, Gauge, Histogram]
_C = TypeVar("_C", bound=_Child)


class MetricFamily(Generic[_C]):
    """One named metric plus all its labeled children."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "children", "_registry")

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Tuple[float, ...] = (),
    ) -> None:
        self.name = _check_name(name)
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self.children: Dict[LabelValues, _C] = {}
        self._registry = registry

    def labels(self, *values: str) -> _C:
        """The child for one label-value combination (created on demand).

        Resolution is meant to happen once per (request, combination) —
        hot paths hold on to the returned child and record against it.
        """
        if len(values) != len(self.label_names):
            raise ReproError(
                f"metric {self.name} expects labels {self.label_names}, "
                f"got {len(values)} values"
            )
        key = tuple(values)
        child = self.children.get(key)
        if child is not None:
            return child
        return cast(_C, self._registry._make_child(self, key))

    def __repr__(self) -> str:
        return f"MetricFamily({self.name}, {self.kind}, children={len(self.children)})"


class MetricsRegistry:
    """Registry of named metric families with striped child locks.

    Parameters
    ----------
    enabled:
        ``False`` hands out shared no-op instruments: registration still
        works (callers keep one code path) but recording costs a single
        empty method call and exports render empty.
    stripes:
        Number of stripe locks children are hashed onto.
    """

    def __init__(self, enabled: bool = True, stripes: int = 8) -> None:
        if stripes < 1:
            raise ReproError(f"stripes must be >= 1, got {stripes}")
        self.enabled = enabled
        self._registry_lock = threading.Lock()
        self._stripes: Tuple[threading.Lock, ...] = tuple(
            threading.Lock() for _ in range(stripes)
        )
        self._families: Dict[str, MetricFamily] = {}

    # -- registration ------------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Iterable[str],
        buckets: Tuple[float, ...] = (),
    ) -> "MetricFamily[_Child]":
        labels = tuple(label_names)
        with self._registry_lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.label_names != labels:
                    raise ReproError(
                        f"metric {name} re-registered as {kind}{labels} "
                        f"(was {existing.kind}{existing.label_names})"
                    )
                return existing
            family = MetricFamily(self, name, kind, help_text, labels, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> "MetricFamily[Counter]":
        """Register (or fetch) a counter family."""
        return cast("MetricFamily[Counter]", self._family(name, "counter", help_text, labels))

    def gauge(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> "MetricFamily[Gauge]":
        """Register (or fetch) a gauge family."""
        return cast("MetricFamily[Gauge]", self._family(name, "gauge", help_text, labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> "MetricFamily[Histogram]":
        """Register (or fetch) a histogram family."""
        if not buckets or list(buckets) != sorted(buckets):
            raise ReproError(f"histogram buckets must be sorted and non-empty: {buckets!r}")
        return cast(
            "MetricFamily[Histogram]",
            self._family(name, "histogram", help_text, labels, tuple(buckets)),
        )

    # -- child construction (stripe assignment) ----------------------------------

    def _make_child(self, family: MetricFamily, key: LabelValues) -> _Child:
        if not self.enabled:
            if family.kind == "counter":
                return _NULL_COUNTER
            if family.kind == "gauge":
                return _NULL_GAUGE
            return _NULL_HISTOGRAM
        stripe = self._stripes[hash((family.name, key)) % len(self._stripes)]
        with self._registry_lock:
            child = family.children.get(key)
            if child is None:
                if family.kind == "counter":
                    child = Counter(stripe)
                elif family.kind == "gauge":
                    child = Gauge(stripe)
                else:
                    child = Histogram(stripe, family.buckets)
                family.children[key] = child
            return child

    # -- export ------------------------------------------------------------------

    def _families_snapshot(self) -> List[MetricFamily]:
        with self._registry_lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def prometheus_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self._families_snapshot():
            with self._registry_lock:
                children = sorted(family.children.items())
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in children:
                labels = _render_labels(family.label_names, values)
                if isinstance(child, Histogram):
                    snap = child.snapshot()
                    buckets = snap["buckets"]
                    assert isinstance(buckets, list)
                    bounds = list(family.buckets) + [float("inf")]
                    for bound, cumulative in zip(bounds, buckets):
                        bucket_labels = _render_labels(
                            tuple(family.label_names) + ("le",),
                            tuple(values) + (_format_value(bound),),
                        )
                        lines.append(
                            f"{family.name}_bucket{bucket_labels} {cumulative}"
                        )
                    lines.append(f"{family.name}_sum{labels} {snap['sum']}")
                    lines.append(f"{family.name}_count{labels} {snap['count']}")
                else:
                    lines.append(
                        f"{family.name}{labels} {_format_value(child.value())}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-friendly snapshot: name → {kind, help, series}."""
        out: Dict[str, Dict[str, object]] = {}
        for family in self._families_snapshot():
            with self._registry_lock:
                children = sorted(family.children.items())
            series: List[Dict[str, object]] = []
            for values, child in children:
                labels = dict(zip(family.label_names, values))
                if isinstance(child, Histogram):
                    snap = child.snapshot()
                    series.append(
                        {
                            "labels": labels,
                            "buckets": snap["buckets"],
                            "bounds": list(family.buckets),
                            "sum": snap["sum"],
                            "count": snap["count"],
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value()})
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, families={len(self._families)})"
