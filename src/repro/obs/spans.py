"""Per-request spans: one timed tree from admission to terminal outcome.

A :class:`Span` is deliberately small — a name, monotonic start/end
times, a flat attribute dict, a list of timestamped events, and child
spans.  The query service opens one ``request`` span per submission and
hangs ``queue`` / ``engine`` children off it, so a single structure
answers "where did this request's time go" the way the paper's Figure 5
wall-clock curves answer it for a whole workload:

- the **request** span covers submit → terminal outcome;
- the **queue** child covers admission wait (charged against the
  request's deadline — see docs/serving.md);
- the **engine** child covers the engine run and carries the algorithm,
  routing strategy and per-run operation counts as attributes; breaker
  fallbacks and degradations appear as events.

Timestamps come from :func:`repro.core.stats.monotonic_seconds` — the
sanctioned monotonic clock (lint rule WPL008 forbids ``time.time()`` for
durations) — so span durations are immune to wall-clock steps.  Spans
are thread-compatible in the same way tickets are: the submitting thread
creates the span, exactly one worker thread mutates it afterwards, and
the internal lock makes the handoff and concurrent readers safe.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from repro.core.stats import monotonic_seconds


class SpanEvent:
    """One timestamped point annotation inside a span."""

    __slots__ = ("name", "at_seconds", "attributes")

    def __init__(self, name: str, at_seconds: float, attributes: Dict[str, Any]) -> None:
        self.name = name
        self.at_seconds = at_seconds
        self.attributes = attributes

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation."""
        return {
            "name": self.name,
            "at_seconds": self.at_seconds,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return f"SpanEvent({self.name} @ {self.at_seconds:.6f})"


class Span:
    """One timed operation; may carry attributes, events and children."""

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.start_seconds = monotonic_seconds()
        self._lock = threading.Lock()
        self._end_seconds: Optional[float] = None
        self._attributes: Dict[str, Any] = dict(attributes or {})
        self._events: List[SpanEvent] = []
        self._children: List["Span"] = []

    # -- recording ---------------------------------------------------------------

    def annotate(self, key: str, value: Any) -> None:
        """Set one attribute (last write wins)."""
        with self._lock:
            self._attributes[key] = value

    def event(self, name: str, **attributes: Any) -> None:
        """Append a timestamped event."""
        stamped = SpanEvent(name, monotonic_seconds() - self.start_seconds, attributes)
        with self._lock:
            self._events.append(stamped)

    def child(self, name: str, attributes: Optional[Dict[str, Any]] = None) -> "Span":
        """Open a child span starting now."""
        child = Span(name, attributes)
        with self._lock:
            self._children.append(child)
        return child

    def finish(self, end_seconds: Optional[float] = None) -> None:
        """Close the span (idempotent — the first finish wins)."""
        now = end_seconds if end_seconds is not None else monotonic_seconds()
        with self._lock:
            if self._end_seconds is None:
                self._end_seconds = now

    # -- reading -----------------------------------------------------------------

    def finished(self) -> bool:
        """Has :meth:`finish` been called?"""
        with self._lock:
            return self._end_seconds is not None

    def duration_seconds(self) -> float:
        """Elapsed seconds; for an open span, elapsed so far."""
        with self._lock:
            end = self._end_seconds
        if end is None:
            end = monotonic_seconds()
        return max(end - self.start_seconds, 0.0)

    def attributes(self) -> Dict[str, Any]:
        """Copy of the attribute dict."""
        with self._lock:
            return dict(self._attributes)

    def events(self) -> List[SpanEvent]:
        """Copy of the event list, in append order."""
        with self._lock:
            return list(self._events)

    def children(self) -> List["Span"]:
        """Copy of the child list, in creation order."""
        with self._lock:
            return list(self._children)

    def find(self, name: str) -> Optional["Span"]:
        """First child (recursively, pre-order) named ``name``."""
        for child in self.children():
            if child.name == name:
                return child
            nested = child.find(name)
            if nested is not None:
                return nested
        return None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly span tree (durations, attributes, events)."""
        with self._lock:
            end = self._end_seconds
            attributes = dict(self._attributes)
            events = [event.as_dict() for event in self._events]
            children = list(self._children)
        duration = (end - self.start_seconds) if end is not None else None
        return {
            "name": self.name,
            "duration_seconds": duration,
            "attributes": attributes,
            "events": events,
            "children": [child.as_dict() for child in children],
        }

    def __repr__(self) -> str:
        state = f"{self.duration_seconds():.6f}s" if self.finished() else "open"
        return f"Span({self.name}, {state}, events={len(self.events())})"
