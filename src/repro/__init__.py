"""Whirlpool — adaptive processing of top-k queries in XML.

A full reproduction of Marian, Amer-Yahia, Koudas & Srivastava,
*"Adaptive Processing of Top-k Queries in XML"* (ICDE 2005): tree-pattern
queries over XML forests, the three-relaxation approximation framework,
XML tf*idf scoring, and the adaptive Whirlpool-S / Whirlpool-M engines with
their LockStep baselines.

Quickstart::

    import repro

    database = repro.parse_document(open("books.xml").read())
    result = repro.topk(database, "/book[.//title = 'wodehouse']", k=3)
    for answer in result.answers:
        print(f"{answer.score:.3f}  {answer.root_node}")

Package map: :mod:`repro.xmldb` (XML substrate), :mod:`repro.xmark`
(document generator), :mod:`repro.query` (tree patterns),
:mod:`repro.relax` (relaxations + plans), :mod:`repro.scoring` (tf*idf),
:mod:`repro.core` (engines), :mod:`repro.recovery` (checkpoint /
restore snapshots), :mod:`repro.service` (embedded query service:
admission control, circuit breakers, graceful drain, crash recovery),
:mod:`repro.simulate` (parallelism model), :mod:`repro.bench`
(experiment harness).
"""

from repro.core.engine import Engine, topk
from repro.core.base import TopKResult
from repro.core.queues import QueuePolicy
from repro.core.topk import TopKAnswer
from repro.query.pattern import Axis, PatternNode, TreePattern
from repro.query.xpath import parse_xpath
from repro.scoring.model import (
    MatchQuality,
    RandomScoreModel,
    ScoreModel,
    TableScoreModel,
    TfIdfScoreModel,
    build_score_model,
)
from repro.xmldb.model import Database, XMLDocument, XMLNode
from repro.xmldb.parser import parse_document, parse_forest
from repro.xmldb.serializer import document_size_bytes, serialize
from repro.errors import (
    EngineError,
    GeneratorError,
    PatternError,
    RecoveryError,
    RelaxationError,
    ReproError,
    ScoringError,
    ServiceError,
    XMLParseError,
    XPathSyntaxError,
)
from repro.recovery import (
    CheckpointPolicy,
    JsonFileRecoveryStore,
    MemoryRecoveryStore,
    RecoveryStore,
)
from repro.service import Outcome, QueryRequest, QueryResponse, WhirlpoolService

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "topk",
    "TopKResult",
    "TopKAnswer",
    "QueuePolicy",
    "Axis",
    "PatternNode",
    "TreePattern",
    "parse_xpath",
    "MatchQuality",
    "ScoreModel",
    "TfIdfScoreModel",
    "RandomScoreModel",
    "TableScoreModel",
    "build_score_model",
    "Database",
    "XMLDocument",
    "XMLNode",
    "parse_document",
    "parse_forest",
    "serialize",
    "document_size_bytes",
    "ReproError",
    "XMLParseError",
    "XPathSyntaxError",
    "PatternError",
    "RelaxationError",
    "ScoringError",
    "EngineError",
    "ServiceError",
    "RecoveryError",
    "GeneratorError",
    "CheckpointPolicy",
    "RecoveryStore",
    "MemoryRecoveryStore",
    "JsonFileRecoveryStore",
    "Outcome",
    "QueryRequest",
    "QueryResponse",
    "WhirlpoolService",
    "__version__",
]
