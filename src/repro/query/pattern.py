"""Tree patterns — the paper's query model (Section 2).

A tree pattern is a rooted tree whose nodes are labeled by element tags,
whose leaves may additionally carry an equality test on the element value,
and whose edges are XPath axes: ``pc`` (parent-child) or ``ad``
(ancestor-descendant).  The root is the returned node.

:class:`TreePattern` instances are mutable only through the relaxation API
(:mod:`repro.relax`); everything the engine consumes (servers, component
predicates) is derived from a frozen snapshot of the node list.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import PatternError
from repro.xmldb.dewey import DepthRange


class Axis(enum.Enum):
    """Tree-pattern edge axes."""

    PC = "pc"
    AD = "ad"

    def depth_range(self) -> DepthRange:
        """The depth-range semantics of the axis."""
        return DepthRange.pc() if self is Axis.PC else DepthRange.ad()

    def __str__(self) -> str:
        return self.value


VALUE_OPS = ("eq", "contains")
"""Supported value-test operators: equality and substring containment."""


def value_test(op: str, expected: str, actual: Optional[str]) -> bool:
    """Evaluate a value test; an absent value never matches."""
    if actual is None:
        return False
    if op == "eq":
        return actual == expected
    if op == "contains":
        return expected in actual
    raise PatternError(f"unknown value operator {op!r}")


class PatternNode:
    """One node of a tree pattern.

    Attributes
    ----------
    tag:
        Element tag the node must match.
    value:
        Optional value test on the matched element's text value.
    value_op:
        How ``value`` is tested: ``"eq"`` (equality — the paper's only
        content predicate) or ``"contains"`` (substring containment — the
        IR-style extension, written ``~=`` in the XPath subset).
    axis:
        Axis of the incoming edge (``None`` on the root).
    optional:
        True once leaf deletion has been applied — a match may leave this
        node (and its subtree) uninstantiated.
    """

    __slots__ = (
        "tag", "value", "value_op", "axis", "optional", "parent", "children", "node_id"
    )

    def __init__(self, tag: str, value: Optional[str] = None, value_op: str = "eq") -> None:
        if not tag:
            raise PatternError("pattern node tag must be non-empty")
        if value_op not in VALUE_OPS:
            raise PatternError(
                f"unknown value operator {value_op!r}; expected one of {VALUE_OPS}"
            )
        self.tag = tag
        self.value = value
        self.value_op = value_op
        self.axis: Optional[Axis] = None
        self.optional = False
        self.parent: Optional[PatternNode] = None
        self.children: List[PatternNode] = []
        self.node_id: int = -1

    def matches_value(self, actual: Optional[str]) -> bool:
        """Evaluate this node's value test against a data node's value."""
        if self.value is None:
            return True
        return value_test(self.value_op, self.value, actual)

    def add_child(self, child: "PatternNode", axis: Axis) -> "PatternNode":
        """Attach ``child`` below this node via ``axis`` and return it."""
        if child.parent is not None:
            raise PatternError(
                f"pattern node {child.tag!r} is already attached under {child.parent.tag!r}"
            )
        child.parent = self
        child.axis = axis
        self.children.append(child)
        return child

    def is_leaf(self) -> bool:
        """True iff the node has no pattern children."""
        return not self.children

    def iter_subtree(self) -> Iterator["PatternNode"]:
        """This node and all pattern descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def path_from_root(self) -> List["PatternNode"]:
        """Nodes from the pattern root down to (and including) this node."""
        path: List[PatternNode] = []
        node: Optional[PatternNode] = self
        while node is not None:
            path.append(node)
            node = node.parent
        path.reverse()
        return path

    def label(self) -> str:
        """Human-readable label, e.g. ``title='wodehouse'``."""
        if self.value is not None:
            op = "~" if self.value_op == "contains" else "="
            return f"{self.tag}{op}{self.value!r}"
        return self.tag

    def __repr__(self) -> str:
        axis = f" {self.axis}" if self.axis else ""
        optional = " optional" if self.optional else ""
        return f"PatternNode({self.label()}{axis}{optional})"


class TreePattern:
    """A rooted tree pattern; the root is the returned node."""

    def __init__(self, root: PatternNode) -> None:
        if root.parent is not None:
            raise PatternError("pattern root must not have a parent")
        self.root = root
        self._renumber()

    # -- structure ----------------------------------------------------------

    def _renumber(self) -> None:
        """(Re)assign stable preorder ids; call after structural edits."""
        self._nodes: List[PatternNode] = list(self.root.iter_subtree())
        for node_id, node in enumerate(self._nodes):
            node.node_id = node_id

    def nodes(self) -> List[PatternNode]:
        """All pattern nodes in preorder (root first)."""
        return list(self._nodes)

    def non_root_nodes(self) -> List[PatternNode]:
        """All nodes except the returned root — one engine server each."""
        return self._nodes[1:]

    def node(self, node_id: int) -> PatternNode:
        """Resolve a preorder node id."""
        return self._nodes[node_id]

    def size(self) -> int:
        """Number of pattern nodes (the paper's 'query size')."""
        return len(self._nodes)

    def edges(self) -> List[Tuple[PatternNode, PatternNode, Axis]]:
        """All (parent, child, axis) edges in preorder."""
        out = []
        for node in self._nodes:
            for child in node.children:
                out.append((node, child, child.axis))
        return out

    def leaves(self) -> List[PatternNode]:
        """All leaf nodes."""
        return [node for node in self._nodes if node.is_leaf()]

    def tags(self) -> List[str]:
        """Distinct tags mentioned by the pattern (index construction set)."""
        return sorted({node.tag for node in self._nodes})

    # -- copying -------------------------------------------------------------

    def copy(self) -> "TreePattern":
        """Deep copy; node ids are preserved by the shared preorder."""
        mapping: Dict[int, PatternNode] = {}

        def clone(node: PatternNode) -> PatternNode:
            copy = PatternNode(node.tag, node.value, node.value_op)
            copy.optional = node.optional
            mapping[id(node)] = copy
            for child in node.children:
                copy.add_child(clone(child), child.axis)
            return copy

        return TreePattern(clone(self.root))

    # -- rendering -----------------------------------------------------------

    def to_xpath(self) -> str:
        """Render back to the XPath subset (best effort, for diagnostics).

        Single-child chains render as path steps
        (``./info/publisher/name = 'psmith'``); branching uses brackets.
        """

        def render_relative(node: PatternNode) -> str:
            step = "//" if node.axis is Axis.AD else "/"
            operator = "~=" if node.value_op == "contains" else "="
            text = f"{step}{node.tag}"
            if node.value is not None and not node.children:
                return f".{text} {operator} '{node.value}'"
            if len(node.children) == 1 and node.value is None:
                # Continue the chain: "./info" + "/publisher..." .
                continuation = render_relative(node.children[0])
                return "." + text + continuation[1:]
            predicates = [render_relative(child) for child in node.children]
            if node.value is not None:
                predicates.insert(0, f". {operator} '{node.value}'")
            if predicates:
                text += "[" + " and ".join(predicates) + "]"
            return "." + text

        root = self.root
        root_operator = "~=" if root.value_op == "contains" else "="
        text = f"/{root.tag}"
        predicates = [render_relative(child) for child in root.children]
        if root.value is not None:
            predicates.insert(0, f". {root_operator} '{root.value}'")
        if predicates:
            text += "[" + " and ".join(predicates) + "]"
        return text

    def describe(self) -> str:
        """Indented multi-line description (diagnostics and examples)."""
        lines: List[str] = []

        def walk(node: PatternNode, depth: int) -> None:
            edge = f"-{node.axis}-" if node.axis else "root"
            optional = " (optional)" if node.optional else ""
            lines.append(f"{'  ' * depth}{edge} {node.label()}{optional}")
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"TreePattern({self.to_xpath()})"


def pattern_from_spec(spec) -> TreePattern:
    """Build a pattern from a nested tuple spec — a test convenience.

    Spec grammar::

        spec  := (tag, axis?, value?, [child_spec, ...]?)

    where ``axis`` is ``"pc"``/``"ad"`` (ignored on the root, defaults to
    ``pc`` on children).  Example::

        pattern_from_spec(
            ("book", [("title", "ad", "wodehouse"), ("price", "pc")])
        )
    """

    def build(node_spec, is_root: bool) -> Tuple[PatternNode, Axis]:
        if isinstance(node_spec, str):
            return PatternNode(node_spec), Axis.PC
        tag = node_spec[0]
        axis = Axis.PC
        value: Optional[str] = None
        children: List = []
        for part in node_spec[1:]:
            if isinstance(part, list):
                children = part
            elif part in ("pc", "ad"):
                axis = Axis(part)
            else:
                value = part
        node = PatternNode(tag, value)
        for child_spec in children:
            child, child_axis = build(child_spec, False)
            node.add_child(child, child_axis)
        return node, axis

    root, _ = build(spec, True)
    return TreePattern(root)
