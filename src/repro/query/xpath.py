"""Parser for the paper's XPath subset into tree patterns.

Grammar (whitespace-insensitive between tokens)::

    query      := ('/' | '//') NAME brackets*
    brackets   := '[' predicate ('and' predicate)* ']'
    predicate  := relpath valuetest?
    relpath    := '.' step+
    step       := ('/' | '//') NAME brackets*
    valuetest  := ('=' | '~=') STRING (single- or double-quoted;
                                       '~=' is substring containment —
                                       an extension beyond the paper)

The returned node is the query root — matching the paper, where every query
is a tree pattern whose root is the answer node (e.g. ``//item[...]``,
``/book[...]``).  A leading ``//`` only changes where in the document the
root may bind; since our data model queries a forest (any node with the root
tag is a candidate), ``/x`` and ``//x`` parse identically, which matches the
paper's evaluation queries.

Examples parsed by this module, straight from the paper::

    /book[.//title = 'wodehouse' and ./info/publisher/name = 'psmith']
    //item[./description/parlist]
    //item[./description/parlist and ./mailbox/mail/text]
    //item[./mailbox/mail/text[./bold and ./keyword] and ./name and ./incategory]
"""

from __future__ import annotations

from typing import Optional

from repro.errors import XPathSyntaxError
from repro.query.pattern import Axis, PatternNode, TreePattern


class _Cursor:
    """Character cursor with skip/expect helpers and error context."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, query=self.text, position=self.pos)

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def skip_ws(self) -> None:
        while not self.eof() and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def take(self, token: str) -> bool:
        """Consume ``token`` if present (after skipping whitespace)."""
        self.skip_ws()
        if self.startswith(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.take(token):
            raise self.error(f"expected {token!r}")

    def read_name(self) -> str:
        self.skip_ws()
        start = self.pos
        while not self.eof():
            ch = self.text[self.pos]
            if ch.isalnum() or ch in "_-.@":
                self.pos += 1
            else:
                break
        if self.pos == start:
            raise self.error("expected an element name")
        return self.text[start : self.pos]

    def read_string(self) -> str:
        self.skip_ws()
        quote = self.peek()
        if quote not in ("'", '"'):
            raise self.error("expected a quoted string")
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end < 0:
            raise self.error("unterminated string literal")
        value = self.text[self.pos : end]
        self.pos = end + 1
        return value


def _read_axis(cursor: _Cursor) -> Optional[Axis]:
    """Read a step separator; ``//`` = AD, ``/`` = PC, neither = None."""
    cursor.skip_ws()
    if cursor.startswith("//"):
        cursor.pos += 2
        return Axis.AD
    if cursor.startswith("/"):
        cursor.pos += 1
        return Axis.PC
    return None


def _parse_brackets(cursor: _Cursor, owner: PatternNode) -> None:
    """Parse zero or more ``[...]`` groups hanging off ``owner``."""
    while cursor.take("["):
        while True:
            _parse_predicate(cursor, owner)
            cursor.skip_ws()
            if cursor.startswith("and") and not (
                cursor.peek(3).isalnum() or cursor.peek(3) in "_-."
            ):
                cursor.pos += 3
                continue
            break
        cursor.expect("]")


def _read_value_operator(cursor: _Cursor):
    """Consume '=' (equality) or '~=' (containment); None if neither."""
    if cursor.startswith("~="):
        cursor.pos += 2
        return "contains"
    if cursor.peek() == "=":
        cursor.pos += 1
        return "eq"
    return None


def _parse_predicate(cursor: _Cursor, owner: PatternNode) -> None:
    """Parse one relative-path predicate and graft it under ``owner``."""
    cursor.skip_ws()
    if not cursor.take("."):
        raise cursor.error("predicates must start with '.'")

    # A bare ". = 'v'" (or ". ~= 'v'") value test on the owner itself.
    cursor.skip_ws()
    operator = _read_value_operator(cursor)
    if operator is not None:
        value = cursor.read_string()
        if owner.value is not None and (owner.value, owner.value_op) != (value, operator):
            raise cursor.error(f"conflicting value tests on <{owner.tag}>")
        owner.value = value
        owner.value_op = operator
        return

    node = owner
    steps = 0
    while True:
        axis = _read_axis(cursor)
        if axis is None:
            break
        tag = cursor.read_name()
        child = PatternNode(tag)
        node.add_child(child, axis)
        node = child
        steps += 1
        _parse_brackets(cursor, node)

    if steps == 0:
        raise cursor.error("expected at least one step after '.'")

    cursor.skip_ws()
    operator = _read_value_operator(cursor)
    if operator is not None:
        node.value = cursor.read_string()
        node.value_op = operator


def parse_xpath(query: str) -> TreePattern:
    """Parse a query in the supported XPath subset into a :class:`TreePattern`.

    Raises
    ------
    XPathSyntaxError
        On any construct outside the subset (multi-step main paths,
        unsupported axes, stray input).
    """
    cursor = _Cursor(query)
    axis = _read_axis(cursor)
    if axis is None:
        raise cursor.error("query must start with '/' or '//'")
    tag = cursor.read_name()
    root = PatternNode(tag)
    _parse_brackets(cursor, root)
    cursor.skip_ws()
    if not cursor.eof():
        if cursor.peek() == "/":
            raise cursor.error(
                "multi-step main paths are not part of the tree-pattern subset; "
                "express the extra steps as predicates on the returned root"
            )
        raise cursor.error("unexpected trailing input")
    return TreePattern(root)
