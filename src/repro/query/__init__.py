"""Tree-pattern queries: the paper's XPath subset.

- :mod:`repro.query.pattern` — tree patterns (rooted, node-labeled, pc/ad
  edges, value predicates on leaves);
- :mod:`repro.query.xpath` — parser from the XPath subset used throughout
  the paper (``/book[.//title = 'wodehouse' and ./info/publisher/name =
  'psmith']``) to tree patterns;
- :mod:`repro.query.predicates` — component-predicate decomposition
  (Definition 4.1) via the depth-range axis algebra;
- :mod:`repro.query.matcher` — a naive exhaustive matcher used as the
  correctness oracle for the engines.
"""

from repro.query.pattern import Axis, PatternNode, TreePattern
from repro.query.xpath import parse_xpath
from repro.query.predicates import ComponentPredicate, component_predicates
from repro.query.matcher import find_matches, count_matches

__all__ = [
    "Axis",
    "PatternNode",
    "TreePattern",
    "parse_xpath",
    "ComponentPredicate",
    "component_predicates",
    "find_matches",
    "count_matches",
]
