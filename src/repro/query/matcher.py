"""Naive exhaustive tree-pattern matcher — the engines' correctness oracle.

Semantics: an (exact) match of pattern ``Q`` in database ``D`` is a mapping
from pattern nodes to data nodes such that tags match, value tests hold, and
each pattern edge's axis holds between the images.  The answer to the query
is the image of the pattern root; several matches may share a root image
(that multiplicity is exactly the ``tf`` of Definition 4.3, per predicate).

This matcher recurses over the pattern with index probes per edge — clear
and obviously correct, but exponential in the worst case.  Tests use it to
validate every engine; it also powers ``LockStep-NoPrun``'s ground truth in
integration tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.query.pattern import PatternNode, TreePattern
from repro.xmldb.index import DatabaseIndex
from repro.xmldb.model import Database, XMLNode

Embedding = Dict[int, XMLNode]
"""A total match: pattern node id → data node."""


def _index_for(database_or_index) -> DatabaseIndex:
    if isinstance(database_or_index, DatabaseIndex):
        return database_or_index
    if isinstance(database_or_index, Database):
        return DatabaseIndex(database_or_index)
    raise TypeError(f"expected Database or DatabaseIndex, got {type(database_or_index)!r}")


def _node_admissible(pattern_node: PatternNode, data_node: XMLNode) -> bool:
    if pattern_node.tag != data_node.tag:
        return False
    return pattern_node.matches_value(data_node.value)


def _match_subtree(
    pattern_node: PatternNode, image: XMLNode, index: DatabaseIndex
) -> List[Embedding]:
    """All embeddings of ``pattern_node``'s subtree with the node at ``image``.

    Children are independent given the parent image, so the embeddings of
    the subtree are the cross product of per-child embedding sets; an empty
    set for any child kills the whole subtree.
    """
    result: List[Embedding] = [{pattern_node.node_id: image}]
    for child in pattern_node.children:
        axis = child.axis.depth_range()
        child_embeddings: List[Embedding] = []
        for candidate in index.related(child.tag, image.dewey, axis):
            if _node_admissible(child, candidate):
                child_embeddings.extend(_match_subtree(child, candidate, index))
        if not child_embeddings:
            return []
        result = [
            {**left, **right} for left in result for right in child_embeddings
        ]
    return result


def find_matches(
    pattern: TreePattern,
    database_or_index,
    root_node: Optional[XMLNode] = None,
) -> List[Embedding]:
    """All exact matches of ``pattern``; optionally anchored at one root.

    Returns one :data:`Embedding` per match, in an order determined by the
    document order of the instantiated nodes.
    """
    index = _index_for(database_or_index)
    root = pattern.root
    if root_node is not None:
        candidates = [root_node] if _node_admissible(root, root_node) else []
    else:
        candidates = [
            node for node in index[root.tag].all() if _node_admissible(root, node)
        ]
    matches: List[Embedding] = []
    for candidate in candidates:
        matches.extend(_match_subtree(root, candidate, index))
    return matches


def count_matches(pattern: TreePattern, database_or_index) -> int:
    """Number of exact matches (tuples, not distinct roots)."""
    return len(find_matches(pattern, database_or_index))


def distinct_roots(matches: List[Embedding], pattern: TreePattern) -> List[XMLNode]:
    """Distinct root images across ``matches``, in document order."""
    root_id = pattern.root.node_id
    seen = {}
    for match in matches:
        node = match[root_id]
        seen.setdefault(node.dewey, node)
    return [seen[key] for key in sorted(seen)]
