"""Component-predicate decomposition (Definition 4.1).

An XPath tree pattern ``Q`` with answer node ``q0`` and other nodes
``q1..ql`` decomposes into the set ``{p(q0, qi)}`` where ``p`` is the axis
relating ``q0`` to ``qi`` — obtained by composing the axes on the edges of
the root-to-``qi`` path.  Composition lives in the depth-range algebra
(:class:`repro.xmldb.dewey.DepthRange`): ``pc`` composes to exact depth
offsets, anything through an ``ad`` edge becomes unbounded.

These predicates are the unit of scoring: ``idf`` and ``tf`` (Definitions
4.2/4.3) are defined per component predicate, and each engine server
contributes the score of exactly one component predicate (plus its value
test, when present).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.query.pattern import PatternNode, TreePattern
from repro.xmldb.dewey import DepthRange, Dewey

#: A compiled axis evaluator: ``test(anchor, node) -> bool``, equivalent to
#: ``axis.matches(anchor, node)`` but specialized to the axis shape.
AxisTest = Callable[[Dewey, Dewey], bool]

#: Compiled component-predicate tests, keyed by ``(tag, DepthRange)``.
#: Every engine build for the same query shape re-derives the same handful
#: of composed axes; compiling once per (tag, axis) pair keeps the hot
#: loop's exact-quality checks monomorphic closures instead of generic
#: ``DepthRange.matches`` calls.  Guarded by a lock: engines are built from
#: service worker threads.
_COMPILED_AXIS_TESTS: Dict[Tuple[str, DepthRange], AxisTest] = {}
_COMPILED_AXIS_LOCK = threading.Lock()


def _compile_axis(axis: DepthRange) -> AxisTest:
    """Specialize ``axis.matches`` to the axis shape (self / unbounded /
    bounded).  Must stay semantically identical to
    :meth:`DepthRange.matches` — the differential tests compare them."""
    lo, hi = axis.lo, axis.hi
    if lo == 0 and hi == 0:
        def test(anchor: Dewey, node: Dewey) -> bool:
            return anchor == node
    elif hi is None:
        def test(anchor: Dewey, node: Dewey) -> bool:
            return len(node) - len(anchor) >= lo and node[: len(anchor)] == anchor
    else:
        def test(anchor: Dewey, node: Dewey) -> bool:
            diff = len(node) - len(anchor)
            return lo <= diff <= hi and node[: len(anchor)] == anchor
    return test


def compiled_axis_test(tag: str, axis: DepthRange) -> AxisTest:
    """The compiled evaluator for component predicate ``(tag, axis)``.

    ``tag`` keys the cache alongside the axis so per-predicate entries stay
    inspectable (two query nodes with equal composed axes but different
    tags are distinct predicates even though their tests are extensionally
    equal).  Double-checked under the lock; compiling twice is harmless.
    """
    key = (tag, axis)
    test = _COMPILED_AXIS_TESTS.get(key)
    if test is None:
        test = _compile_axis(axis)
        with _COMPILED_AXIS_LOCK:
            test = _COMPILED_AXIS_TESTS.setdefault(key, test)
    return test


def compiled_axis_cache_size() -> int:
    """Number of cached compiled predicates (test observability)."""
    with _COMPILED_AXIS_LOCK:
        return len(_COMPILED_AXIS_TESTS)


def clear_compiled_axis_tests() -> None:
    """Drop the compiled-predicate cache (test isolation)."""
    with _COMPILED_AXIS_LOCK:
        _COMPILED_AXIS_TESTS.clear()


class ComponentPredicate:
    """One atomic predicate ``p(q0, qi)`` of a query's decomposition.

    Attributes
    ----------
    anchor_tag:
        Tag of the query root ``q0``.
    target:
        The pattern node ``qi`` this predicate reaches.
    axis:
        Composed root-to-target axis, as a depth range.
    relaxed_axis:
        The edge-generalized version of ``axis`` (what Algorithm 1's
        ``getComposition`` probes with) — descendant-at-any-depth unless the
        axis is already unbounded.
    value:
        The target node's value test, when it has one.
    """

    __slots__ = ("anchor_tag", "target", "axis", "relaxed_axis", "value", "value_op")

    def __init__(self, anchor_tag: str, target: PatternNode, axis: DepthRange) -> None:
        self.anchor_tag = anchor_tag
        self.target = target
        self.axis = axis
        self.relaxed_axis = axis.relaxed()
        self.value: Optional[str] = target.value
        self.value_op: str = target.value_op

    @property
    def target_tag(self) -> str:
        """Tag of the target query node."""
        return self.target.tag

    def is_relaxable(self) -> bool:
        """True iff relaxation actually weakens the axis."""
        return self.relaxed_axis != self.axis

    def describe(self) -> str:
        """Readable form, e.g. ``item[.//text='x']`` or ``book[./title]``."""
        if self.axis.is_exact_pc():
            step = "./"
        elif self.axis.is_ad():
            step = ".//"
        else:
            hi = "inf" if self.axis.hi is None else str(self.axis.hi)
            step = f".[depth {self.axis.lo}..{hi}]/"
        operator = "~=" if self.value_op == "contains" else "="
        value = f"{operator}'{self.value}'" if self.value is not None else ""
        return f"{self.anchor_tag}[{step}{self.target_tag}{value}]"

    def __repr__(self) -> str:
        return f"ComponentPredicate({self.describe()})"


def composed_axis(ancestor: PatternNode, descendant: PatternNode) -> DepthRange:
    """Compose the axes along the pattern path from ``ancestor`` down to
    ``descendant`` (the paper's ``getComposition``).

    Raises
    ------
    ValueError
        If ``descendant`` is not in ``ancestor``'s pattern subtree.
    """
    path = descendant.path_from_root()
    try:
        start = path.index(ancestor)
    except ValueError:
        raise ValueError(
            f"{descendant.label()} is not a pattern descendant of {ancestor.label()}"
        )
    axis = DepthRange.self_axis()
    for node in path[start + 1 :]:
        axis = axis.compose(node.axis.depth_range())
    return axis


def component_predicates(pattern: TreePattern) -> List[ComponentPredicate]:
    """The set ``P_Q`` of Definition 4.1, in preorder of the target nodes.

    One predicate per non-root node.  (The paper's example also lists a
    ``q0[parent::doc-root]`` predicate; in our forest model every root-tag
    node is a legal answer anchor, so that predicate is identically true and
    is omitted.)  A value test on the root itself is exposed separately by
    the scorer.
    """
    root = pattern.root
    return [
        ComponentPredicate(root.tag, node, composed_axis(root, node))
        for node in pattern.non_root_nodes()
    ]
