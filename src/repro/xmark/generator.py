"""Deterministic XMark-subset document generation.

Documents have the shape::

    site
      regions
        africa | asia | ...        (one element per populated region)
          item (id attribute)
            location, quantity, [name], payment
            description
              text | parlist( listitem( text | parlist(...) )* )
            shipping
            [incategory]*          (optional, possibly several)
            [mailbox ( mail(from, to, date, [text]) )*]

``text`` elements may contain ``bold`` / ``keyword`` / ``emph`` children —
the *shared* element of the paper (the same structure appears below both
``description`` and ``mail``), which is what makes subtree promotion
meaningful on this data.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import GeneratorError
from repro.xmark.schema import CATEGORIES, CITIES, REGIONS, VOCABULARY, XMarkConfig
from repro.xmldb.model import Database, XMLNode
from repro.xmldb.serializer import document_size_bytes


def _sentence(rng: random.Random, config: XMarkConfig) -> str:
    lo, hi = config.sentence_words
    count = rng.randint(lo, hi)
    return " ".join(rng.choice(VOCABULARY) for _ in range(count))


def _text_element(rng: random.Random, config: XMarkConfig) -> XMLNode:
    """A ``text`` node with optional bold/keyword/emph markup children."""
    text = XMLNode("text", _sentence(rng, config))
    if rng.random() < config.p_bold:
        text.child("bold", rng.choice(VOCABULARY))
    if rng.random() < config.p_keyword:
        text.child("keyword", rng.choice(VOCABULARY))
    if rng.random() < config.p_emph:
        text.child("emph", rng.choice(VOCABULARY))
    return text


def _parlist(rng: random.Random, config: XMarkConfig, depth: int) -> XMLNode:
    """A recursive ``parlist`` of ``listitem`` elements."""
    parlist = XMLNode("parlist")
    lo, hi = config.parlist_items_range
    for _ in range(rng.randint(lo, hi)):
        listitem = parlist.child("listitem")
        recurse = depth < config.max_parlist_depth and rng.random() < config.p_nested_parlist
        if recurse:
            listitem.add_child(_parlist(rng, config, depth + 1))
        else:
            listitem.add_child(_text_element(rng, config))
    return parlist


def _description(rng: random.Random, config: XMarkConfig) -> XMLNode:
    description = XMLNode("description")
    if rng.random() < config.p_parlist:
        description.add_child(_parlist(rng, config, depth=1))
    else:
        description.add_child(_text_element(rng, config))
    return description


def _mailbox(rng: random.Random, config: XMarkConfig) -> XMLNode:
    mailbox = XMLNode("mailbox")
    lo, hi = config.mail_range
    for _ in range(rng.randint(lo, hi)):
        mail = mailbox.child("mail")
        mail.child("from", f"{rng.choice(VOCABULARY)}@auctions.example")
        mail.child("to", f"{rng.choice(VOCABULARY)}@auctions.example")
        mail.child(
            "date",
            f"{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}/{rng.randint(1998, 2004)}",
        )
        if rng.random() < config.p_mail_text:
            mail.add_child(_text_element(rng, config))
    return mailbox


def _item(rng: random.Random, config: XMarkConfig, item_id: int) -> XMLNode:
    item = XMLNode("item")
    item.child("@id", f"item{item_id}")
    item.child("location", rng.choice(CITIES))
    item.child("quantity", str(rng.randint(1, 10)))
    if rng.random() < config.p_name:
        item.child("name", f"{rng.choice(VOCABULARY)} {rng.choice(VOCABULARY)}")
    item.child("payment", rng.choice(("cash", "check", "credit card")))
    item.add_child(_description(rng, config))
    item.child("shipping", rng.choice(("buyer pays", "seller pays", "international")))
    lo, hi = config.incategory_range
    categories = rng.sample(CATEGORIES, k=min(rng.randint(lo, hi), len(CATEGORIES)))
    for category in categories:
        incategory = item.child("incategory")
        incategory.child("@category", category)
    if rng.random() < config.p_mailbox:
        item.add_child(_mailbox(rng, config))
    return item


def generate_root(config: XMarkConfig) -> XMLNode:
    """Generate the bare ``site`` tree for ``config`` (unattached)."""
    config.validate()
    rng = random.Random(config.seed)
    site = XMLNode("site")
    regions = site.child("regions")
    region_nodes = {}
    for item_id in range(config.items):
        region = rng.choice(REGIONS)
        if region not in region_nodes:
            region_nodes[region] = XMLNode(region)
        region_nodes[region].add_child(_item(rng, config, item_id))
    for region in REGIONS:
        if region in region_nodes:
            regions.add_child(region_nodes[region])
    return site


def generate_database(config: XMarkConfig) -> Database:
    """Generate a single-document :class:`~repro.xmldb.model.Database`."""
    database = Database()
    database.add_document(generate_root(config))
    return database


def estimate_bytes_per_item(config: XMarkConfig, sample_items: int = 50) -> float:
    """Mean serialized bytes per item, from a small sample document."""
    if sample_items <= 0:
        raise GeneratorError(f"sample_items must be positive, got {sample_items}")
    sample_config = XMarkConfig(**{**config.__dict__, "items": sample_items})
    database = generate_database(sample_config)
    overhead_config = XMarkConfig(**{**config.__dict__, "items": 0})
    overhead = document_size_bytes(generate_database(overhead_config))
    return max((document_size_bytes(database) - overhead) / sample_items, 1.0)


def generate_for_size(
    target_bytes: int,
    seed: int = 42,
    config: Optional[XMarkConfig] = None,
    tolerance: float = 0.1,
) -> Database:
    """Generate a document whose serialized size approximates ``target_bytes``.

    Calibrates the item count from a sample, generates, then corrects once
    if outside ``tolerance`` — good to a few percent, which is all the
    paper's 1/10/50 Mb axis needs.
    """
    if target_bytes <= 0:
        raise GeneratorError(f"target_bytes must be positive, got {target_bytes}")
    base = config if config is not None else XMarkConfig()
    per_item = estimate_bytes_per_item(
        XMarkConfig(**{**base.__dict__, "seed": seed})
    )
    items = max(int(target_bytes / per_item), 1)
    attempt = XMarkConfig(**{**base.__dict__, "items": items, "seed": seed})
    database = generate_database(attempt)
    size = document_size_bytes(database)
    if abs(size - target_bytes) / target_bytes > tolerance:
        items = max(int(items * target_bytes / size), 1)
        attempt = XMarkConfig(**{**base.__dict__, "items": items, "seed": seed})
        database = generate_database(attempt)
    return database
