"""XMark-like auction document generator.

The paper's evaluation (Section 6.2.1) uses documents produced by the XMark
``xmlgen`` tool and three queries over ``item`` elements.  This package is
a deterministic Python substitute implementing the XMark DTD fragment those
queries exercise:

- **recursive** elements (``parlist``/``listitem``) — enable edge
  generalization;
- **optional** elements (``incategory``, ``mailbox``) — enable leaf
  deletion;
- **shared** elements (``text``, reachable under both ``description`` and
  ``mail``) — enable subtree promotion.

:func:`generate_database` builds a forest for an item count;
:func:`generate_for_size` calibrates the item count to a serialized target
byte size, matching the paper's 1 Mb / 10 Mb / 50 Mb document axis.
"""

from repro.xmark.schema import XMarkConfig, REGIONS, VOCABULARY
from repro.xmark.generator import (
    generate_database,
    generate_for_size,
    estimate_bytes_per_item,
)

__all__ = [
    "XMarkConfig",
    "REGIONS",
    "VOCABULARY",
    "generate_database",
    "generate_for_size",
    "estimate_bytes_per_item",
]
