"""Schema constants and generator configuration for the XMark subset.

The knobs mirror the structural features the paper's queries probe:

- ``Q1: //item[./description/parlist]`` — needs items whose description
  holds a ``parlist`` (vs plain ``text``), with *recursive* nesting;
- ``Q2: ... and ./mailbox/mail/text`` — needs optional mailboxes with
  mails carrying ``text``;
- ``Q3: //item[./mailbox/mail/text[./bold and ./keyword] and ./name and
  ./incategory]`` — needs ``bold``/``keyword`` markup inside ``text`` and
  optional ``incategory`` tags.

Every probability below is the chance a generated element takes the
structural branch that makes the corresponding predicate match *exactly*;
the complements create the approximate-match population that relaxation
recovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

REGIONS: Tuple[str, ...] = (
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
)

# A small Shakespeare-flavoured vocabulary in the spirit of xmlgen's word
# list; enough variety for distinct names/keywords without bloating memory.
VOCABULARY: Tuple[str, ...] = (
    "gold", "silver", "amber", "ivory", "jade", "quartz", "topaz", "opal",
    "willow", "cedar", "maple", "aspen", "birch", "rowan", "alder", "hazel",
    "duke", "earl", "baron", "knight", "squire", "herald", "falcon", "raven",
    "harbor", "meadow", "garden", "orchard", "valley", "summit", "brook",
    "lantern", "compass", "sextant", "anchor", "rudder", "mast", "sail",
    "sonnet", "ballad", "ode", "verse", "stanza", "refrain", "chorus",
    "ember", "frost", "zephyr", "tempest", "aurora", "eclipse", "meridian",
)

CATEGORIES: Tuple[str, ...] = tuple(f"category{i}" for i in range(40))

CITIES: Tuple[str, ...] = (
    "london", "paris", "tokyo", "cairo", "sydney", "lagos", "lima",
    "oslo", "delhi", "quito", "dakar", "hanoi", "turin", "kyoto",
)


@dataclass
class XMarkConfig:
    """Generator parameters (all distributions are seeded & deterministic).

    Attributes
    ----------
    items:
        Number of ``item`` elements across all regions.
    seed:
        Master seed; equal configs generate byte-identical forests.
    p_parlist:
        Probability a description holds a ``parlist`` rather than ``text``.
    p_nested_parlist:
        Probability a ``listitem`` recurses into another ``parlist``
        (depth-limited by ``max_parlist_depth``).
    p_mailbox:
        Probability an item has a mailbox at all.
    mail_range:
        (min, max) number of mails in a mailbox.
    p_mail_text:
        Probability a mail carries a ``text`` body.
    p_bold / p_keyword / p_emph:
        Probability a ``text`` element contains each markup child.
    incategory_range:
        (min, max) number of ``incategory`` tags; 0 is allowed (optional).
    p_name:
        Probability an item carries a ``name`` (paper: optional nodes).
    parlist_items_range:
        (min, max) ``listitem`` count per ``parlist``.
    """

    items: int = 100
    seed: int = 42
    p_parlist: float = 0.45
    p_nested_parlist: float = 0.35
    max_parlist_depth: int = 3
    p_mailbox: float = 0.65
    mail_range: Tuple[int, int] = (1, 4)
    p_mail_text: float = 0.8
    p_bold: float = 0.5
    p_keyword: float = 0.5
    p_emph: float = 0.3
    incategory_range: Tuple[int, int] = (0, 3)
    p_name: float = 0.9
    parlist_items_range: Tuple[int, int] = (1, 3)
    sentence_words: Tuple[int, int] = (3, 8)

    def validate(self) -> None:
        """Raise :class:`~repro.errors.GeneratorError` on invalid knobs."""
        from repro.errors import GeneratorError

        if self.items < 0:
            raise GeneratorError(f"items must be >= 0, got {self.items}")
        for name in (
            "p_parlist",
            "p_nested_parlist",
            "p_mailbox",
            "p_mail_text",
            "p_bold",
            "p_keyword",
            "p_emph",
            "p_name",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise GeneratorError(f"{name} must be in [0, 1], got {value}")
        for name in ("mail_range", "incategory_range", "parlist_items_range", "sentence_words"):
            lo, hi = getattr(self, name)
            if lo < 0 or hi < lo:
                raise GeneratorError(f"{name} must be a valid (lo, hi) range, got {(lo, hi)}")
        if self.max_parlist_depth < 1:
            raise GeneratorError(
                f"max_parlist_depth must be >= 1, got {self.max_parlist_depth}"
            )
