"""Node-labeled tree data model for XML forests.

The paper's data model (Section 2) is "a forest of node labeled trees".
:class:`XMLNode` is one labeled node carrying an optional text value;
:class:`XMLDocument` is one rooted tree; :class:`Database` is the queryable
forest, the unit the scoring function's ``idf`` statistics range over.

Nodes are assigned Dewey identifiers at construction/attachment time and the
model deliberately keeps them immutable once a node is attached — the engine
relies on Dewey ids as stable primary keys.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.xmldb import dewey as dw
from repro.xmldb.dewey import Dewey


class XMLNode:
    """One node of an XML tree: a tag, an optional text value, children.

    Parameters
    ----------
    tag:
        Element name, e.g. ``"book"``.
    value:
        Optional flattened text content for leaf-ish nodes, e.g.
        ``"wodehouse"`` for ``<title>wodehouse</title>``.  Mixed-content
        parents keep their own direct text here too.
    """

    __slots__ = ("tag", "value", "children", "dewey", "parent")

    def __init__(self, tag: str, value: Optional[str] = None) -> None:
        if not tag:
            raise ValueError("XMLNode tag must be a non-empty string")
        self.tag = tag
        self.value = value
        self.children: List[XMLNode] = []
        self.dewey: Dewey = ()
        self.parent: Optional[XMLNode] = None

    # -- construction ------------------------------------------------------

    def add_child(self, child: "XMLNode") -> "XMLNode":
        """Append ``child`` and return it (enables fluent tree building)."""
        if child.parent is not None:
            raise ValueError(
                f"node <{child.tag}> is already attached under <{child.parent.tag}>"
            )
        child.parent = self
        self.children.append(child)
        if self.dewey:
            child._assign_deweys(self.dewey + (len(self.children) - 1,))
        return child

    def child(self, tag: str, value: Optional[str] = None) -> "XMLNode":
        """Create, attach and return a new child node."""
        return self.add_child(XMLNode(tag, value))

    def _assign_deweys(self, dewey: Dewey) -> None:
        """Stamp this subtree with Dewey ids rooted at ``dewey``.

        Iterative on an explicit stack: document depth is data-controlled
        (the columnar index arena has no depth limit), so stamping must not
        be bounded by the interpreter recursion limit.
        """
        stack = [(self, dewey)]
        while stack:
            node, node_dewey = stack.pop()
            node.dewey = node_dewey
            for ordinal, child in enumerate(node.children):
                stack.append((child, node_dewey + (ordinal,)))

    # -- navigation --------------------------------------------------------

    def iter_subtree(self) -> Iterator["XMLNode"]:
        """Yield this node and all descendants in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def descendants(self) -> Iterator["XMLNode"]:
        """Yield strict descendants in document order."""
        subtree = self.iter_subtree()
        next(subtree)  # drop self
        return subtree

    def find_all(self, tag: str) -> List["XMLNode"]:
        """All descendant-or-self nodes with the given tag, document order."""
        return [node for node in self.iter_subtree() if node.tag == tag]

    def depth(self) -> int:
        """Depth of this node within its tree (roots are at depth 0)."""
        return dw.depth(self.dewey)

    def text(self) -> str:
        """Concatenated text of this subtree (own value then descendants)."""
        parts = []
        for node in self.iter_subtree():
            if node.value:
                parts.append(node.value)
        return " ".join(parts)

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:
        suffix = f"={self.value!r}" if self.value is not None else ""
        return f"<{self.tag}{suffix} @{dw.dewey_str(self.dewey)}>"

    def __eq__(self, other: object) -> bool:
        """Identity by Dewey id — valid once attached to a database."""
        return isinstance(other, XMLNode) and self.dewey == other.dewey and self.tag == other.tag

    def __hash__(self) -> int:
        return hash((self.tag, self.dewey))


class XMLDocument:
    """One rooted XML tree inside a database forest."""

    __slots__ = ("root", "ordinal")

    def __init__(self, root: XMLNode, ordinal: int = 0) -> None:
        self.root = root
        self.ordinal = ordinal
        root._assign_deweys((ordinal,))

    def iter_nodes(self) -> Iterator[XMLNode]:
        """All nodes of this document in document order."""
        return self.root.iter_subtree()

    def node_count(self) -> int:
        """Number of nodes in the document."""
        return sum(1 for _ in self.iter_nodes())

    def node_by_dewey(self, dewey: Dewey) -> Optional[XMLNode]:
        """Resolve a Dewey id to a node, or ``None`` if out of range."""
        if not dewey or dewey[0] != self.ordinal:
            return None
        node = self.root
        for ordinal in dewey[1:]:
            if ordinal >= len(node.children):
                return None
            node = node.children[ordinal]
        return node

    def __repr__(self) -> str:
        return f"XMLDocument(root=<{self.root.tag}>, ordinal={self.ordinal})"


class Database:
    """A forest of XML documents — the query target and the idf universe.

    A database owns its documents' Dewey space: document ``i`` roots at
    Dewey ``(i,)``, so node ids are unique across the forest and document
    order extends across documents.
    """

    def __init__(self, documents: Optional[Sequence[XMLDocument]] = None) -> None:
        self.documents: List[XMLDocument] = []
        if documents:
            for document in documents:
                self.add_document(document.root)

    @staticmethod
    def from_roots(roots: Iterable[XMLNode]) -> "Database":
        """Build a database from bare root nodes."""
        database = Database()
        for root in roots:
            database.add_document(root)
        return database

    def add_document(self, root: XMLNode) -> XMLDocument:
        """Attach a tree to the forest, re-stamping its Dewey ids."""
        document = XMLDocument(root, ordinal=len(self.documents))
        self.documents.append(document)
        return document

    # -- access ------------------------------------------------------------

    def iter_nodes(self) -> Iterator[XMLNode]:
        """All nodes of the forest in document order."""
        for document in self.documents:
            yield from document.iter_nodes()

    def node_count(self) -> int:
        """Total number of nodes across all documents."""
        return sum(document.node_count() for document in self.documents)

    def node_by_dewey(self, dewey: Dewey) -> Optional[XMLNode]:
        """Resolve a Dewey id anywhere in the forest."""
        if not dewey or dewey[0] >= len(self.documents):
            return None
        return self.documents[dewey[0]].node_by_dewey(dewey)

    def nodes_with_tag(self, tag: str) -> List[XMLNode]:
        """All nodes with a given tag in document order (linear scan).

        The engine itself goes through :class:`repro.xmldb.index.DatabaseIndex`;
        this method exists for tests and ad-hoc exploration.
        """
        return [node for node in self.iter_nodes() if node.tag == tag]

    def tag_histogram(self) -> Dict[str, int]:
        """Count of nodes per tag across the forest."""
        histogram: Dict[str, int] = {}
        for node in self.iter_nodes():
            histogram[node.tag] = histogram.get(node.tag, 0) + 1
        return histogram

    def __len__(self) -> int:
        return len(self.documents)

    def __repr__(self) -> str:
        return f"Database({len(self.documents)} documents)"


def build_tree(spec) -> XMLNode:
    """Build a tree from a nested tuple spec — a test/fixture convenience.

    The spec grammar::

        spec  := (tag,) | (tag, value) | (tag, [child_spec, ...])
               | (tag, value, [child_spec, ...])

    Example::

        build_tree(("book", [("title", "wodehouse"), ("price", "48.95")]))
    """
    if isinstance(spec, str):
        return XMLNode(spec)
    tag = spec[0]
    value = None
    children: Sequence = ()
    rest = spec[1:]
    for part in rest:
        if isinstance(part, (list, tuple)) and not isinstance(part, str):
            children = part
        else:
            value = part
    node = XMLNode(tag, value)
    for child_spec in children:
        node.add_child(build_tree(child_spec))
    return node
