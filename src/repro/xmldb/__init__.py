"""XML substrate: data model, Dewey encoding, parser, indexes, statistics.

This package implements the storage layer the paper's engine runs on:

- :mod:`repro.xmldb.dewey` — Dewey identifiers and structural-axis tests;
- :mod:`repro.xmldb.model` — node-labeled tree / forest data model;
- :mod:`repro.xmldb.parser` — a small, dependency-free XML parser;
- :mod:`repro.xmldb.serializer` — model → text round-tripping;
- :mod:`repro.xmldb.index` — per-tag Dewey-ordered indexes;
- :mod:`repro.xmldb.stats` — selectivity / fan-out statistics used by
  the adaptive router.
"""

from repro.xmldb.dewey import Dewey, DepthRange
from repro.xmldb.model import XMLNode, XMLDocument, Database
from repro.xmldb.parser import parse_document, parse_forest
from repro.xmldb.serializer import serialize, document_size_bytes
from repro.xmldb.index import TagIndex, DatabaseIndex
from repro.xmldb.stats import DatabaseStatistics

__all__ = [
    "Dewey",
    "DepthRange",
    "XMLNode",
    "XMLDocument",
    "Database",
    "parse_document",
    "parse_forest",
    "serialize",
    "document_size_bytes",
    "TagIndex",
    "DatabaseIndex",
    "DatabaseStatistics",
]
