"""Per-tag Dewey-ordered indexes — object and columnar backends.

Section 6.2.1 of the paper: *"When a query is executed on an XML document,
the document is parsed and nodes involved in the query are stored in indexes
along with their Dewey encoding."*  :class:`TagIndex` is that structure —
all nodes of one tag in document (= Dewey lexicographic) order — and
:class:`DatabaseIndex` bundles one per tag.

The key operation is the *range probe*: all nodes with a given tag inside
the subtree of an ancestor, found by binary search over the Dewey order,
optionally filtered by a :class:`~repro.xmldb.dewey.DepthRange` (so the same
probe serves ``pc``, ``ad`` and composed depth-bounded axes).

Two interchangeable backends implement the probe:

- :class:`TagIndex` (``"object"``) — the reference implementation: a sorted
  list of per-node Dewey *tuples*, C-level ``bisect`` for the range, then a
  Python loop re-testing the depth range per candidate with tuple slices;
- :class:`ColumnarTagIndex` (``"columnar"``, the default) — all Dewey
  components of the tag's nodes concatenated into one flat ``array('I')``
  arena plus an offset table (lexicographic order preserved), the range
  located by binary search over arena slices, and the depth-range filter
  reduced to O(1) slicing (descendant axes) or integer length reads
  (bounded axes) — no per-candidate tuple materialization or prefix
  re-checks, because membership in the subtree interval already implies
  the prefix.

Both backends return bit-identical candidates in the same order; they
differ only in the work performed, which each one accounts honestly into a
:class:`ProbeCost` (modeled elementary Dewey-component comparisons — the
deterministic unit the bench trajectory's backend-speedup records gate).
"""

from __future__ import annotations

import bisect
import os
import threading
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.xmldb.dewey import DepthRange, Dewey, subtree_interval
from repro.xmldb.model import Database, XMLNode

#: Selectable index backends, preferred first.
INDEX_BACKENDS: Tuple[str, ...] = ("columnar", "object")

#: Environment override consulted when no explicit backend is passed.
INDEX_BACKEND_ENV = "REPRO_INDEX_BACKEND"

#: Backend used when neither the caller nor the environment chooses.
DEFAULT_INDEX_BACKEND = "columnar"

#: Largest Dewey component (sibling ordinal / document ordinal) the
#: columnar arena can store — the capacity of one ``array('I')`` slot.
MAX_ARENA_COMPONENT = 0xFFFFFFFF


def resolve_index_backend(backend: Optional[str] = None) -> str:
    """Resolve an index-backend choice: explicit > ``$REPRO_INDEX_BACKEND``
    > :data:`DEFAULT_INDEX_BACKEND`.  Raises ``ValueError`` on unknown
    names so misconfiguration fails at index-build time, loudly."""
    chosen = backend or os.environ.get(INDEX_BACKEND_ENV) or DEFAULT_INDEX_BACKEND
    if chosen not in INDEX_BACKENDS:
        raise ValueError(
            f"unknown index backend {chosen!r}; expected one of {INDEX_BACKENDS}"
        )
    return chosen


def _search_steps(n: int) -> int:
    """Modeled binary-search depth over ``n`` sorted keys: ``ceil(log2(n+1))``."""
    return n.bit_length()


class ProbeCost:
    """Deterministic accounting of the work one index's probes perform.

    ``units`` counts *modeled boxed component comparisons* — the unit the
    structural-join literature's region/array encodings exist to remove.
    On the object backend every lexicographic step compares Dewey *tuples*
    of boxed Python ints, so a binary-search step charges the probe-key
    length (``len(anchor) + 1`` components a tuple comparison may walk)
    and every per-candidate depth-range re-test charges ``len(anchor) + 2``
    (prefix slice + two bound checks).  On the columnar backend a search
    step is one vectorized ``array('I')`` comparison over unboxed machine
    ints — charged 1 — and candidates inside the subtree interval need no
    prefix re-check at all: unbounded descendant axes charge nothing per
    candidate, bounded axes charge 1 (an offset-difference length test).
    The counts depend only on index contents and probe sequence — never on
    the machine — so the bench trajectory can gate them as deterministic
    units.  Mutation is lock-guarded: Whirlpool-M probes from every server
    thread.
    """

    __slots__ = ("_lock", "units", "probes")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.units = 0
        self.probes = 0

    def charge(self, units: int) -> None:
        """Account one probe costing ``units`` modeled comparisons."""
        with self._lock:
            self.units += units
            self.probes += 1

    def snapshot(self) -> Tuple[int, int]:
        """(units, probes) read atomically."""
        with self._lock:
            return self.units, self.probes

    def reset(self) -> None:
        with self._lock:
            self.units = 0
            self.probes = 0

    def __repr__(self) -> str:
        units, probes = self.snapshot()
        return f"ProbeCost(units={units}, probes={probes})"


class TagIndex:
    """All nodes carrying one tag, in document order (object backend)."""

    backend = "object"

    __slots__ = ("tag", "nodes", "_deweys", "cost")

    def __init__(self, tag: str, nodes: Iterable[XMLNode] = ()) -> None:
        self.tag = tag
        self.nodes: List[XMLNode] = sorted(nodes, key=lambda node: node.dewey)
        self._deweys: List[Dewey] = [node.dewey for node in self.nodes]
        self.cost = ProbeCost()

    def insert(self, node: XMLNode) -> None:
        """Insert one node, keeping document order."""
        if node.tag != self.tag:
            raise ValueError(f"node tag {node.tag!r} does not match index tag {self.tag!r}")
        position = bisect.bisect_left(self._deweys, node.dewey)
        self.nodes.insert(position, node)
        self._deweys.insert(position, node.dewey)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[XMLNode]:
        return iter(self.nodes)

    def all(self) -> List[XMLNode]:
        """All indexed nodes in document order."""
        return list(self.nodes)

    def _range(self, ancestor: Dewey) -> Tuple[int, int]:
        """Half-open index interval of ``ancestor``'s subtree (incl. self)."""
        lo, hi = subtree_interval(ancestor)
        start = bisect.bisect_left(self._deweys, lo)
        end = bisect.bisect_left(self._deweys, hi, start)
        return start, end

    def _range_units(self, anchor: Dewey) -> int:
        """Modeled cost of locating the subtree interval: two binary
        searches whose lexicographic comparisons each examine up to the
        probe-key length components, plus the O(1) self-boundary check."""
        return 2 * _search_steps(len(self.nodes)) * (len(anchor) + 1) + 1

    def in_subtree(self, ancestor: Dewey, include_self: bool = False) -> List[XMLNode]:
        """Indexed nodes inside the subtree rooted at ``ancestor``.

        Binary search over the Dewey order: the subtree of ``ancestor`` is
        a contiguous Dewey interval.  The ancestor itself, when indexed,
        can only sit at the interval start (it is the interval's lower
        bound), so excluding it is an O(1) boundary check — not a filter
        pass over the slice.
        """
        start, end = self._range(ancestor)
        if not include_self and start < end and self._deweys[start] == ancestor:
            start += 1
        self.cost.charge(self._range_units(ancestor))
        return self.nodes[start:end]

    def related(self, anchor: Dewey, axis: DepthRange) -> List[XMLNode]:
        """Indexed nodes ``n`` such that ``axis.matches(anchor, n.dewey)``.

        ``axis`` relates ``anchor`` (above) to the returned nodes (below);
        the probe narrows to the subtree interval first, then applies the
        depth-range filter.  A ``self`` axis degenerates to an exact lookup.
        """
        if axis.is_self():
            position = bisect.bisect_left(self._deweys, anchor)
            self.cost.charge((_search_steps(len(self.nodes)) + 1) * (len(anchor) + 1))
            if position < len(self._deweys) and self._deweys[position] == anchor:
                return [self.nodes[position]]
            return []
        start, end = self._range(anchor)
        if axis.lo != 0 and start < end and self._deweys[start] == anchor:
            start += 1
        candidates = self.nodes[start:end]
        # Reference semantics: re-test the composed axis per candidate
        # (prefix slice + depth bounds) — the tuple-compare loop the
        # columnar backend exists to eliminate.
        self.cost.charge(
            self._range_units(anchor) + (end - start) * (len(anchor) + 2)
        )
        return [node for node in candidates if axis.matches(anchor, node.dewey)]

    def count_in_subtree(self, ancestor: Dewey) -> int:
        """Number of indexed nodes strictly inside ``ancestor``'s subtree."""
        start, end = self._range(ancestor)
        count = end - start
        if start < len(self._deweys) and self._deweys[start] == ancestor:
            count -= 1
        self.cost.charge(self._range_units(ancestor))
        return count


def _build_columns(nodes: List[XMLNode]) -> Tuple[array, array]:
    """(arena, offsets) for a document-ordered node list.

    The arena concatenates every node's Dewey components; ``offsets[i]``
    is node ``i``'s first component, ``offsets[i + 1]`` one past its last
    (so lengths are offset differences and no separate length table is
    needed).  Rejects components at or beyond the ``array('I')`` capacity
    (strictly *at* too: the subtree-interval successor key adds one to the
    last component and must still fit an arena slot).
    """
    arena = array("I")
    offsets = array("I", [0])
    for node in nodes:
        dewey = node.dewey
        if any(component >= MAX_ARENA_COMPONENT for component in dewey):
            raise ValueError(
                f"Dewey {dewey} exceeds the columnar arena component capacity "
                f"({MAX_ARENA_COMPONENT}); use the object index backend"
            )
        arena.extend(dewey)
        offsets.append(len(arena))
    return arena, offsets


class ColumnarTagIndex(TagIndex):
    """Array-backed tag index: Deweys in one flat ``array('I')`` arena.

    Storage is three parallel structures in document order — the node
    list, the component arena, and the ``n + 1`` offset table.  Probes
    binary-search the arena (slice comparisons are lexicographic, exactly
    the Dewey document order) and resolve depth ranges from offset
    differences; candidates inside a subtree interval need no prefix
    re-check, so descendant probes are pure slices.

    Shared across Whirlpool-M server threads and service workers like
    every index: reads are lock-free over immutable-once-built arrays,
    and :meth:`insert` (rare — bulk construction goes through
    ``__init__``) swaps freshly built columns under ``_lock``.
    """

    backend = "columnar"

    __slots__ = ("_arena", "_offsets", "_lock")

    def __init__(self, tag: str, nodes: Iterable[XMLNode] = ()) -> None:
        self.tag = tag
        self.nodes = sorted(nodes, key=lambda node: node.dewey)
        self._arena, self._offsets = _build_columns(self.nodes)
        self._lock = threading.Lock()
        self.cost = ProbeCost()

    def insert(self, node: XMLNode) -> None:
        """Insert one node, keeping document order (rebuilds the columns)."""
        if node.tag != self.tag:
            raise ValueError(f"node tag {node.tag!r} does not match index tag {self.tag!r}")
        with self._lock:
            position = self._bisect(array("I", node.dewey))
            nodes = list(self.nodes)
            nodes.insert(position, node)
            arena, offsets = _build_columns(nodes)
            self.nodes = nodes
            self._arena = arena
            self._offsets = offsets

    # -- arena search ------------------------------------------------------

    def _bisect(self, key: array, lo: int = 0) -> int:
        """``bisect_left`` over the arena: first index whose Dewey is
        ``>= key`` in lexicographic (= document) order."""
        arena, offsets = self._arena, self._offsets
        hi = len(self.nodes)
        while lo < hi:
            mid = (lo + hi) // 2
            if arena[offsets[mid] : offsets[mid + 1]] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _range(self, ancestor: Dewey) -> Tuple[int, int]:
        lo, hi = subtree_interval(ancestor)
        start = self._bisect(array("I", lo))
        end = self._bisect(array("I", hi), start)
        return start, end

    def _range_units(self, anchor: Dewey) -> int:
        """Modeled cost of locating the subtree interval: two binary
        searches at one *vectorized* arena comparison per step (unboxed
        machine ints, not per-component boxed compares), plus the O(1)
        self-boundary check."""
        return 2 * _search_steps(len(self.nodes)) + 1

    def _length(self, position: int) -> int:
        """Number of Dewey components of node ``position`` (offset diff)."""
        return self._offsets[position + 1] - self._offsets[position]

    # -- probes ------------------------------------------------------------

    def in_subtree(self, ancestor: Dewey, include_self: bool = False) -> List[XMLNode]:
        """Indexed nodes inside the subtree rooted at ``ancestor`` —
        binary search over the arena, then one slice."""
        start, end = self._range(ancestor)
        if not include_self and start < end and self._length(start) == len(ancestor):
            # Same length inside [ancestor, successor) ⇒ equal to the
            # ancestor, and it can only sit at the interval start.
            start += 1
        self.cost.charge(self._range_units(ancestor))
        return self.nodes[start:end]

    def related(self, anchor: Dewey, axis: DepthRange) -> List[XMLNode]:
        """Depth-range probe resolved from the offset table.

        Everything inside the subtree interval already has ``anchor`` as
        a Dewey prefix, so the axis reduces to a length condition:
        unbounded descendant(-or-self) axes are pure slices, bounded axes
        filter on offset differences — no tuple comparisons at all.
        """
        nodes = self.nodes
        if axis.is_self():
            key = array("I", anchor)
            position = self._bisect(key)
            self.cost.charge(_search_steps(len(nodes)) + 1)
            if position < len(nodes) and self._arena[
                self._offsets[position] : self._offsets[position + 1]
            ] == key:
                return [nodes[position]]
            return []
        start, end = self._range(anchor)
        anchor_length = len(anchor)
        if axis.lo != 0 and start < end and self._length(start) == anchor_length:
            start += 1
        if axis.hi is None and axis.lo <= 1:
            # Descendant / descendant-or-self: the slice is the answer
            # (the only interval member at the anchor's own length is the
            # anchor, excluded above when the axis demands strict descent).
            self.cost.charge(self._range_units(anchor))
            return nodes[start:end]
        low = anchor_length + axis.lo
        high = None if axis.hi is None else anchor_length + axis.hi
        offsets = self._offsets
        self.cost.charge(self._range_units(anchor) + (end - start))
        return [
            nodes[position]
            for position in range(start, end)
            if low <= offsets[position + 1] - offsets[position]
            and (high is None or offsets[position + 1] - offsets[position] <= high)
        ]

    def count_in_subtree(self, ancestor: Dewey) -> int:
        """Number of indexed nodes strictly inside ``ancestor``'s subtree."""
        start, end = self._range(ancestor)
        count = end - start
        if start < end and self._length(start) == len(ancestor):
            count -= 1
        self.cost.charge(self._range_units(ancestor))
        return count


class _EmptyTagIndex(TagIndex):
    """Shared immutable placeholder returned for lookups of absent tags.

    One instance serves every missing tag of every database: the read
    path of :meth:`DatabaseIndex.__getitem__` must never mutate shared
    state (the service layer shares one index across worker threads), so
    a miss cannot allocate-and-cache per tag.  ``insert`` is refused —
    anything that wants a mutable per-tag index must go through
    ``DatabaseIndex.indexes`` explicitly.
    """

    __slots__ = ()

    def insert(self, node: XMLNode) -> None:
        raise TypeError(
            "the shared empty TagIndex is immutable; register the tag on "
            "the DatabaseIndex before inserting nodes"
        )


#: The one shared miss result (empty node list, placeholder tag).
_EMPTY_TAG_INDEX = _EmptyTagIndex("")

_BACKEND_CLASSES: Dict[str, type] = {
    "object": TagIndex,
    "columnar": ColumnarTagIndex,
}


class DatabaseIndex:
    """Tag → :class:`TagIndex` map over a whole database forest."""

    def __init__(
        self,
        database: Database,
        tags: Optional[Iterable[str]] = None,
        backend: Optional[str] = None,
    ) -> None:
        """Index ``database``; restrict to ``tags`` when given.

        The paper indexes only "nodes involved in the query"; passing the
        query's tag set reproduces that, while ``tags=None`` indexes
        everything (convenient for statistics and tests).  ``backend``
        picks the per-tag index implementation (``"columnar"`` or
        ``"object"``); ``None`` defers to ``$REPRO_INDEX_BACKEND`` and
        then the columnar default.
        """
        self.database = database
        self.backend = resolve_index_backend(backend)
        index_cls = _BACKEND_CLASSES[self.backend]
        wanted = set(tags) if tags is not None else None
        buckets: Dict[str, List[XMLNode]] = {}
        for node in database.iter_nodes():
            if wanted is not None and node.tag not in wanted:
                continue
            buckets.setdefault(node.tag, []).append(node)
        self.indexes: Dict[str, TagIndex] = {
            tag: index_cls(tag, nodes) for tag, nodes in buckets.items()
        }
        if wanted is not None:
            for tag in wanted:
                self.indexes.setdefault(tag, index_cls(tag))

    def __getitem__(self, tag: str) -> TagIndex:
        """The tag's index, or the shared empty index when absent.

        Deliberately non-mutating: worker threads of the query service
        share one index per cached engine, so a missing-tag *read* must
        not write ``self.indexes`` (a plain dict, check-then-insert on it
        is a data race).  Absent tags resolve to one immutable shared
        empty :class:`TagIndex`.
        """
        index = self.indexes.get(tag)
        if index is None:
            return _EMPTY_TAG_INDEX
        return index

    def __contains__(self, tag: str) -> bool:
        return tag in self.indexes

    def tags(self) -> List[str]:
        """All indexed tags."""
        return sorted(self.indexes)

    def count(self, tag: str) -> int:
        """Number of nodes with ``tag`` (0 when the tag is absent)."""
        index = self.indexes.get(tag)
        return len(index) if index is not None else 0

    def related(self, tag: str, anchor: Dewey, axis: DepthRange) -> List[XMLNode]:
        """Convenience probe: nodes with ``tag`` related to ``anchor`` by ``axis``."""
        index = self.indexes.get(tag)
        if index is None:
            return []
        return index.related(anchor, axis)

    # -- probe accounting --------------------------------------------------

    def probe_cost(self) -> Tuple[int, int]:
        """Aggregate (units, probes) across every tag index."""
        units = 0
        probes = 0
        for index in self.indexes.values():
            tag_units, tag_probes = index.cost.snapshot()
            units += tag_units
            probes += tag_probes
        return units, probes

    def reset_probe_cost(self) -> None:
        """Zero every tag index's probe accounting (bench isolation)."""
        for index in self.indexes.values():
            index.cost.reset()
