"""Per-tag Dewey-ordered indexes.

Section 6.2.1 of the paper: *"When a query is executed on an XML document,
the document is parsed and nodes involved in the query are stored in indexes
along with their Dewey encoding."*  :class:`TagIndex` is that structure —
all nodes of one tag in document (= Dewey lexicographic) order — and
:class:`DatabaseIndex` bundles one per tag.

The key operation is the *range probe*: all nodes with a given tag inside
the subtree of an ancestor, found by binary search over the Dewey order,
optionally filtered by a :class:`~repro.xmldb.dewey.DepthRange` (so the same
probe serves ``pc``, ``ad`` and composed depth-bounded axes).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional

from repro.xmldb.dewey import DepthRange, Dewey, subtree_interval
from repro.xmldb.model import Database, XMLNode


class TagIndex:
    """All nodes carrying one tag, in document order."""

    __slots__ = ("tag", "nodes", "_deweys")

    def __init__(self, tag: str, nodes: Iterable[XMLNode] = ()) -> None:
        self.tag = tag
        self.nodes: List[XMLNode] = sorted(nodes, key=lambda node: node.dewey)
        self._deweys: List[Dewey] = [node.dewey for node in self.nodes]

    def insert(self, node: XMLNode) -> None:
        """Insert one node, keeping document order."""
        if node.tag != self.tag:
            raise ValueError(f"node tag {node.tag!r} does not match index tag {self.tag!r}")
        position = bisect.bisect_left(self._deweys, node.dewey)
        self.nodes.insert(position, node)
        self._deweys.insert(position, node.dewey)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def all(self) -> List[XMLNode]:
        """All indexed nodes in document order."""
        return list(self.nodes)

    def in_subtree(self, ancestor: Dewey, include_self: bool = False) -> List[XMLNode]:
        """Indexed nodes inside the subtree rooted at ``ancestor``.

        Binary search over the Dewey order: the subtree of ``ancestor`` is a
        contiguous Dewey interval.
        """
        lo, hi = subtree_interval(ancestor)
        start = bisect.bisect_left(self._deweys, lo)
        end = bisect.bisect_left(self._deweys, hi)
        matches = self.nodes[start:end]
        if not include_self:
            matches = [node for node in matches if node.dewey != ancestor]
        return matches

    def related(self, anchor: Dewey, axis: DepthRange) -> List[XMLNode]:
        """Indexed nodes ``n`` such that ``axis.matches(anchor, n.dewey)``.

        ``axis`` relates ``anchor`` (above) to the returned nodes (below);
        the probe narrows to the subtree interval first, then applies the
        depth-range filter.  A ``self`` axis degenerates to an exact lookup.
        """
        if axis.is_self():
            position = bisect.bisect_left(self._deweys, anchor)
            if position < len(self._deweys) and self._deweys[position] == anchor:
                return [self.nodes[position]]
            return []
        candidates = self.in_subtree(anchor, include_self=axis.lo == 0)
        return [node for node in candidates if axis.matches(anchor, node.dewey)]

    def count_in_subtree(self, ancestor: Dewey) -> int:
        """Number of indexed nodes strictly inside ``ancestor``'s subtree."""
        lo, hi = subtree_interval(ancestor)
        start = bisect.bisect_left(self._deweys, lo)
        end = bisect.bisect_left(self._deweys, hi)
        count = end - start
        if start < len(self._deweys) and self._deweys[start] == ancestor:
            count -= 1
        return count


class _EmptyTagIndex(TagIndex):
    """Shared immutable placeholder returned for lookups of absent tags.

    One instance serves every missing tag of every database: the read
    path of :meth:`DatabaseIndex.__getitem__` must never mutate shared
    state (the service layer shares one index across worker threads), so
    a miss cannot allocate-and-cache per tag.  ``insert`` is refused —
    anything that wants a mutable per-tag index must go through
    ``DatabaseIndex.indexes`` explicitly.
    """

    __slots__ = ()

    def insert(self, node: XMLNode) -> None:
        raise TypeError(
            "the shared empty TagIndex is immutable; register the tag on "
            "the DatabaseIndex before inserting nodes"
        )


#: The one shared miss result (empty node list, placeholder tag).
_EMPTY_TAG_INDEX = _EmptyTagIndex("")


class DatabaseIndex:
    """Tag → :class:`TagIndex` map over a whole database forest."""

    def __init__(self, database: Database, tags: Optional[Iterable[str]] = None) -> None:
        """Index ``database``; restrict to ``tags`` when given.

        The paper indexes only "nodes involved in the query"; passing the
        query's tag set reproduces that, while ``tags=None`` indexes
        everything (convenient for statistics and tests).
        """
        self.database = database
        wanted = set(tags) if tags is not None else None
        buckets: Dict[str, List[XMLNode]] = {}
        for node in database.iter_nodes():
            if wanted is not None and node.tag not in wanted:
                continue
            buckets.setdefault(node.tag, []).append(node)
        self.indexes: Dict[str, TagIndex] = {
            tag: TagIndex(tag, nodes) for tag, nodes in buckets.items()
        }
        if wanted is not None:
            for tag in wanted:
                self.indexes.setdefault(tag, TagIndex(tag))

    def __getitem__(self, tag: str) -> TagIndex:
        """The tag's index, or the shared empty index when absent.

        Deliberately non-mutating: worker threads of the query service
        share one index per cached engine, so a missing-tag *read* must
        not write ``self.indexes`` (a plain dict, check-then-insert on it
        is a data race).  Absent tags resolve to one immutable shared
        empty :class:`TagIndex`.
        """
        index = self.indexes.get(tag)
        if index is None:
            return _EMPTY_TAG_INDEX
        return index

    def __contains__(self, tag: str) -> bool:
        return tag in self.indexes

    def tags(self) -> List[str]:
        """All indexed tags."""
        return sorted(self.indexes)

    def count(self, tag: str) -> int:
        """Number of nodes with ``tag`` (0 when the tag is absent)."""
        index = self.indexes.get(tag)
        return len(index) if index is not None else 0

    def related(self, tag: str, anchor: Dewey, axis: DepthRange) -> List[XMLNode]:
        """Convenience probe: nodes with ``tag`` related to ``anchor`` by ``axis``."""
        index = self.indexes.get(tag)
        if index is None:
            return []
        return index.related(anchor, axis)
