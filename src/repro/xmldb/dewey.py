"""Dewey identifiers and the depth-range axis algebra.

Every node in a parsed document carries a *Dewey identifier*: the tuple of
sibling ordinals along the path from the root to the node.  The root of the
``i``-th tree in a forest has Dewey ``(i,)``; its third child has Dewey
``(i, 2)`` and so on.  Dewey ids make the XPath structural axes cheap,
index-friendly predicates:

- ``b`` is a *child* of ``a``      iff ``b.dewey[:-1] == a.dewey``;
- ``b`` is a *descendant* of ``a`` iff ``a.dewey`` is a proper prefix of
  ``b.dewey``;
- ``b`` is a *following sibling* of ``a`` iff they share a parent prefix and
  ``b``'s last ordinal is larger.

The paper composes axes along query paths (Definition 4.1: component
predicates are root-to-node axis compositions).  We represent a composed
axis as a :class:`DepthRange` — the admissible difference in depth between
the two nodes on one ancestor chain:

- ``pc``  = depth difference exactly 1  → ``DepthRange(1, 1)``
- ``ad``  = depth difference ≥ 1        → ``DepthRange(1, None)``
- ``self``= depth difference exactly 0  → ``DepthRange(0, 0)``
- ``pc∘pc`` = exactly 2                 → ``DepthRange(2, 2)``
- ``pc∘ad`` = ≥ 2                       → ``DepthRange(2, None)``

Composition is interval addition, and the paper's relaxation of a composed
predicate (used by ``getComposition`` in Algorithm 1) drops the depth bounds
down to plain descendant: :meth:`DepthRange.relaxed`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

Dewey = Tuple[int, ...]
"""A Dewey identifier: tuple of sibling ordinals from the root."""


def dewey_str(dewey: Dewey) -> str:
    """Render a Dewey id in the conventional dotted form, e.g. ``0.2.1``."""
    return ".".join(str(component) for component in dewey)


def parse_dewey(text: str) -> Dewey:
    """Parse a dotted Dewey string (``"0.2.1"``) back into a tuple."""
    if not text:
        return ()
    return tuple(int(part) for part in text.split("."))


def is_self(a: Dewey, b: Dewey) -> bool:
    """True iff the two ids denote the same node."""
    return a == b


def is_child(parent: Dewey, child: Dewey) -> bool:
    """True iff ``child`` is a direct child of ``parent``."""
    return len(child) == len(parent) + 1 and child[:-1] == parent


def is_parent(child: Dewey, parent: Dewey) -> bool:
    """True iff ``parent`` is the direct parent of ``child``."""
    return is_child(parent, child)

def is_descendant(ancestor: Dewey, descendant: Dewey) -> bool:
    """True iff ``descendant`` lies strictly below ``ancestor``."""
    return (
        len(descendant) > len(ancestor)
        and descendant[: len(ancestor)] == ancestor
    )


def is_ancestor(descendant: Dewey, ancestor: Dewey) -> bool:
    """True iff ``ancestor`` lies strictly above ``descendant``."""
    return is_descendant(ancestor, descendant)


def is_descendant_or_self(ancestor: Dewey, node: Dewey) -> bool:
    """True iff ``node`` equals ``ancestor`` or lies below it."""
    return node[: len(ancestor)] == ancestor


def is_following_sibling(a: Dewey, b: Dewey) -> bool:
    """True iff ``b`` is a later sibling of ``a`` (same parent, larger ordinal)."""
    return (
        len(a) == len(b)
        and len(a) >= 2  # forest roots have no parent, hence no siblings
        and a[:-1] == b[:-1]
        and b[-1] > a[-1]
    )


def is_sibling(a: Dewey, b: Dewey) -> bool:
    """True iff ``a`` and ``b`` are distinct nodes sharing a parent."""
    return len(a) == len(b) and len(a) >= 2 and a[:-1] == b[:-1] and a != b


def common_prefix(a: Dewey, b: Dewey) -> Dewey:
    """Dewey id of the lowest common ancestor-or-self of two nodes."""
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return a[:i]


def depth(dewey: Dewey) -> int:
    """Depth of a node: the root of each tree has depth 0."""
    return len(dewey) - 1


def subtree_interval(dewey: Dewey) -> Tuple[Dewey, Dewey]:
    """Half-open Dewey interval ``[lo, hi)`` covering the subtree of a node.

    Any node ``n`` satisfies ``lo <= n.dewey < hi`` iff ``n`` is the node
    itself or one of its descendants; the bound works because Dewey tuples
    compare lexicographically.  Used for index range scans.

    The empty Dewey ``()`` names no node (every attached node carries at
    least its document ordinal), so it has no subtree and is rejected with
    :class:`ValueError` instead of the ``IndexError`` the tuple arithmetic
    used to raise.
    """
    if not dewey:
        raise ValueError("the empty Dewey names no node and has no subtree interval")
    return dewey, dewey[:-1] + (dewey[-1] + 1,)


class DepthRange:
    """An admissible depth-difference interval along one ancestor chain.

    ``DepthRange(lo, hi)`` relates node ``a`` to node ``b`` iff ``a``'s Dewey
    is a prefix of ``b``'s and ``lo <= len(b) - len(a) <= hi``.  ``hi=None``
    means unbounded (descendant at any depth ≥ ``lo``).

    Instances are immutable and hashable, so they can key caches of compiled
    predicates.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: Optional[int]) -> None:
        if lo < 0:
            raise ValueError(f"DepthRange lower bound must be >= 0, got {lo}")
        if hi is not None and hi < lo:
            raise ValueError(f"DepthRange upper bound {hi} below lower bound {lo}")
        self.lo = lo
        self.hi = hi

    # -- canonical axes ----------------------------------------------------

    @staticmethod
    def self_axis() -> "DepthRange":
        """The ``self`` axis: same node."""
        return DepthRange(0, 0)

    @staticmethod
    def pc() -> "DepthRange":
        """The ``pc`` (parent-child) axis: depth difference exactly 1."""
        return DepthRange(1, 1)

    @staticmethod
    def ad() -> "DepthRange":
        """The ``ad`` (ancestor-descendant) axis: depth difference ≥ 1."""
        return DepthRange(1, None)

    # -- algebra -----------------------------------------------------------

    def compose(self, other: "DepthRange") -> "DepthRange":
        """Sequential composition: ``a —self→ x —other→ b``.

        Interval addition: lower bounds add; upper bounds add unless either
        is unbounded.
        """
        lo = self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return DepthRange(lo, hi)

    def relaxed(self) -> "DepthRange":
        """Edge-generalized version: keep only "somewhere below" (or self).

        ``pc`` relaxes to ``ad``; any composed bounded range relaxes to
        descendant-at-any-depth.  ``self`` stays ``self``.

        Relaxation may only *widen* the predicate (Algorithm 1's
        ``getComposition`` substitutes the relaxed axis wherever the exact
        one fails): the result always :meth:`subsumes` the original.  In
        particular a self-inclusive range (``lo == 0``) keeps the self
        case and relaxes to descendant-or-self — dropping it would evict
        valid matches from relaxed answers.
        """
        if self.hi == 0:
            return self
        if self.lo == 0:
            return DepthRange(0, None)
        return DepthRange(1, None)

    def subsumes(self, other: "DepthRange") -> bool:
        """True iff every pair related by ``other`` is related by ``self``."""
        if other.lo < self.lo:
            return False
        if self.hi is None:
            return True
        if other.hi is None:
            return False
        return other.hi <= self.hi

    # -- evaluation --------------------------------------------------------

    def matches(self, ancestor: Dewey, node: Dewey) -> bool:
        """Evaluate the range against two Dewey ids (ancestor chain check)."""
        diff = len(node) - len(ancestor)
        if diff < self.lo:
            return False
        if self.hi is not None and diff > self.hi:
            return False
        return node[: len(ancestor)] == ancestor

    def is_exact_pc(self) -> bool:
        """True iff this is the plain parent-child axis."""
        return self.lo == 1 and self.hi == 1

    def is_ad(self) -> bool:
        """True iff this is the unbounded ancestor-descendant axis."""
        return self.lo == 1 and self.hi is None

    def is_self(self) -> bool:
        """True iff this is the self axis."""
        return self.lo == 0 and self.hi == 0

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DepthRange)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        if self.is_exact_pc():
            return "DepthRange(pc)"
        if self.is_ad():
            return "DepthRange(ad)"
        if self.is_self():
            return "DepthRange(self)"
        hi = "inf" if self.hi is None else str(self.hi)
        return f"DepthRange({self.lo}, {hi})"


def sort_deweys(deweys: Iterable[Dewey]) -> list:
    """Sort Dewey ids in document order (lexicographic tuple order)."""
    return sorted(deweys)
