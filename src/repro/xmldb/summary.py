"""Path summaries: a DataGuide-style structural index with counts.

The paper's size-based router assumes "estimates of the number of
extensions computed by the server for a partial match (such estimates
could be obtained by using work on selectivity estimation for XML)".  The
default :class:`~repro.core.router.MinAliveRouter` uses exact per-root
index counts (precise but it repeats probe work); this module provides the
cheap estimation substrate the paper alludes to:

- :class:`PathSummary` — one node per distinct root-to-node *tag path* in
  the database (a strong DataGuide for trees), annotated with the number
  of data nodes on that path;
- :meth:`PathSummary.estimate_related` — expected number of ``tag`` nodes
  related to a node on a given path by a depth-range axis, computed purely
  from summary counts (no data access).

Construction is one pass over the database; estimates are O(#paths).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.xmldb.dewey import DepthRange
from repro.xmldb.model import Database

TagPath = Tuple[str, ...]
"""A root-to-node path of tags, e.g. ``("site", "regions", "africa")``."""


class PathSummary:
    """Distinct tag paths of a database forest, with node counts."""

    def __init__(self, database: Database) -> None:
        self.counts: Dict[TagPath, int] = {}
        self._by_tag: Dict[str, List[TagPath]] = {}
        for document in database.documents:
            stack = [(document.root, (document.root.tag,))]
            while stack:
                node, path = stack.pop()
                self.counts[path] = self.counts.get(path, 0) + 1
                for child in node.children:
                    stack.append((child, path + (child.tag,)))
        for path in self.counts:
            self._by_tag.setdefault(path[-1], []).append(path)

    # -- lookups ---------------------------------------------------------------

    def path_count(self, path: TagPath) -> int:
        """Number of data nodes on an exact tag path (0 if absent)."""
        return self.counts.get(path, 0)

    def paths_with_tag(self, tag: str) -> List[TagPath]:
        """All distinct paths ending in ``tag``."""
        return list(self._by_tag.get(tag, []))

    def tag_count(self, tag: str) -> int:
        """Total number of nodes with ``tag``."""
        return sum(self.counts[path] for path in self._by_tag.get(tag, ()))

    def distinct_paths(self) -> int:
        """Number of distinct tag paths (the summary's size)."""
        return len(self.counts)

    # -- estimation -------------------------------------------------------------

    def estimate_related(
        self, anchor_tag: str, target_tag: str, axis: DepthRange
    ) -> float:
        """Expected number of ``target_tag`` nodes related by ``axis`` to
        one ``anchor_tag`` node.

        Uses the uniformity assumption standard in XML selectivity
        estimation: target nodes on a path extending an anchor path are
        spread evenly over that path's anchor nodes.
        """
        anchor_paths = self._by_tag.get(anchor_tag, [])
        total_anchors = sum(self.counts[path] for path in anchor_paths)
        if total_anchors == 0:
            return 0.0
        expected = 0.0
        for anchor_path in anchor_paths:
            anchors_here = self.counts[anchor_path]
            for target_path in self._by_tag.get(target_tag, []):
                if len(target_path) <= len(anchor_path):
                    continue
                if target_path[: len(anchor_path)] != anchor_path:
                    continue
                depth_difference = len(target_path) - len(anchor_path)
                if depth_difference < axis.lo:
                    continue
                if axis.hi is not None and depth_difference > axis.hi:
                    continue
                expected += self.counts[target_path]
        return expected / total_anchors

    def estimate_satisfaction(
        self, anchor_tag: str, target_tag: str, axis: DepthRange
    ) -> float:
        """Estimated fraction of anchors with ≥ 1 related target.

        Approximated as ``min(1, expected fan-out)`` per anchor path,
        weighted by anchor counts — exact when targets distribute at most
        one per anchor, optimistic otherwise (standard estimator caveat).
        """
        anchor_paths = self._by_tag.get(anchor_tag, [])
        total_anchors = sum(self.counts[path] for path in anchor_paths)
        if total_anchors == 0:
            return 0.0
        satisfied = 0.0
        for anchor_path in anchor_paths:
            anchors_here = self.counts[anchor_path]
            fanout_here = 0.0
            for target_path in self._by_tag.get(target_tag, []):
                if len(target_path) <= len(anchor_path):
                    continue
                if target_path[: len(anchor_path)] != anchor_path:
                    continue
                depth_difference = len(target_path) - len(anchor_path)
                if depth_difference < axis.lo:
                    continue
                if axis.hi is not None and depth_difference > axis.hi:
                    continue
                fanout_here += self.counts[target_path]
            satisfied += anchors_here * min(fanout_here / anchors_here, 1.0)
        return satisfied / total_anchors

    def __repr__(self) -> str:
        return f"PathSummary({self.distinct_paths()} paths)"
