"""Serialization of the node-labeled tree model back to XML text.

The serializer is the inverse of :mod:`repro.xmldb.parser` for the model's
canonical form: attribute children (``@name``) become XML attributes, node
values become character data, and the five predefined entities are escaped.
It also provides :func:`document_size_bytes`, which the benchmark harness
uses to calibrate generator scales against the paper's 1/10/50 Mb document
sizes.
"""

from __future__ import annotations

from typing import List, Union

from repro.xmldb.model import Database, XMLDocument, XMLNode


def _escape_text(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _escape_attribute(text: str) -> str:
    return _escape_text(text).replace('"', "&quot;")


def _serialize_node(node: XMLNode, out: List[str], indent: int, pretty: bool) -> None:
    pad = "  " * indent if pretty else ""
    newline = "\n" if pretty else ""
    attributes = [child for child in node.children if child.tag.startswith("@")]
    elements = [child for child in node.children if not child.tag.startswith("@")]

    out.append(pad)
    out.append(f"<{node.tag}")
    for attribute in attributes:
        out.append(f' {attribute.tag[1:]}="{_escape_attribute(attribute.value or "")}"')

    if not elements and node.value is None:
        out.append(f"/>{newline}")
        return

    out.append(">")
    if node.value is not None:
        out.append(_escape_text(node.value))
    if elements:
        out.append(newline)
        for child in elements:
            _serialize_node(child, out, indent + 1, pretty)
        out.append(pad)
    out.append(f"</{node.tag}>{newline}")


def serialize(source: Union[Database, XMLDocument, XMLNode], pretty: bool = True) -> str:
    """Serialize a database, document or node subtree to XML text.

    A multi-document database serializes to the concatenation of its
    documents, which :func:`repro.xmldb.parser.parse_forest` accepts back
    only document-by-document; single documents round-trip through
    :func:`repro.xmldb.parser.parse_document`.
    """
    if isinstance(source, Database):
        return "".join(serialize(document, pretty) for document in source.documents)
    if isinstance(source, XMLDocument):
        source = source.root
    out: List[str] = []
    _serialize_node(source, out, 0, pretty)
    return "".join(out)


def document_size_bytes(source: Union[Database, XMLDocument, XMLNode]) -> int:
    """UTF-8 size of the serialized form — the paper's 'document size' axis."""
    return len(serialize(source, pretty=True).encode("utf-8"))
