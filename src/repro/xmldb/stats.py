"""Database statistics backing idf scores and the size-based router.

Two consumers:

- :mod:`repro.scoring.tfidf` needs, per component predicate ``p(q0, qi)``,
  the number of ``q0`` nodes and the number of them with at least one ``qi``
  node related by ``p`` (Definition 4.2 — idf).
- the ``min_alive_partial_matches`` router (Section 6.1.4) needs fan-out
  estimates ("number of extensions computed by the server for a partial
  match") and enough of the score distribution to estimate pruning odds.

Both reduce to :class:`PredicateStatistics`, computed once per (root tag,
target tag, axis) triple and cached on the :class:`DatabaseStatistics`
object.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.xmldb.dewey import DepthRange
from repro.xmldb.index import DatabaseIndex


class PredicateStatistics:
    """Counts describing one structural predicate ``p(anchor_tag, target_tag)``.

    Attributes
    ----------
    anchor_count:
        Number of nodes with the anchor tag in the database.
    satisfying_count:
        Number of anchor nodes with ≥ 1 related target node.
    fanouts:
        Per-anchor-node counts of related target nodes (same order as the
        anchor index) — the raw material for fan-out and tf estimates.
    """

    __slots__ = (
        "anchor_tag",
        "target_tag",
        "axis",
        "anchor_count",
        "satisfying_count",
        "fanouts",
    )

    def __init__(
        self,
        anchor_tag: str,
        target_tag: str,
        axis: DepthRange,
        fanouts: List[int],
    ) -> None:
        self.anchor_tag = anchor_tag
        self.target_tag = target_tag
        self.axis = axis
        self.fanouts = fanouts
        self.anchor_count = len(fanouts)
        self.satisfying_count = sum(1 for fanout in fanouts if fanout > 0)

    # -- derived quantities --------------------------------------------------

    def selectivity(self) -> float:
        """Fraction of anchor nodes satisfying the predicate (0 when empty)."""
        if self.anchor_count == 0:
            return 0.0
        return self.satisfying_count / self.anchor_count

    def idf(self) -> float:
        """Definition 4.2: ``log(anchor_count / satisfying_count)``.

        Predicates no anchor node satisfies get the maximal idf over the
        database (``log(anchor_count + 1)``) rather than infinity, so relaxed
        plans can still rank answers; an empty database scores 0.
        """
        if self.anchor_count == 0:
            return 0.0
        if self.satisfying_count == 0:
            return math.log(self.anchor_count + 1)
        return math.log(self.anchor_count / self.satisfying_count)

    def mean_fanout(self) -> float:
        """Average number of related target nodes per anchor node."""
        if self.anchor_count == 0:
            return 0.0
        return sum(self.fanouts) / self.anchor_count

    def mean_fanout_when_present(self) -> float:
        """Average fan-out restricted to anchor nodes with ≥ 1 related node."""
        if self.satisfying_count == 0:
            return 0.0
        return sum(self.fanouts) / self.satisfying_count

    def max_fanout(self) -> int:
        """Largest observed fan-out (tf upper bound for this predicate)."""
        return max(self.fanouts) if self.fanouts else 0

    def fanout_histogram(self) -> Dict[int, int]:
        """Histogram {fan-out value: number of anchor nodes}."""
        histogram: Dict[int, int] = {}
        for fanout in self.fanouts:
            histogram[fanout] = histogram.get(fanout, 0) + 1
        return histogram

    def __repr__(self) -> str:
        return (
            f"PredicateStatistics({self.anchor_tag}->{self.target_tag} {self.axis}, "
            f"sel={self.selectivity():.3f}, mean_fanout={self.mean_fanout():.2f})"
        )


class DatabaseStatistics:
    """Cached per-predicate statistics over one indexed database."""

    def __init__(self, index: DatabaseIndex) -> None:
        self.index = index
        self._cache: Dict[Tuple[str, str, DepthRange], PredicateStatistics] = {}

    def predicate(
        self, anchor_tag: str, target_tag: str, axis: DepthRange
    ) -> PredicateStatistics:
        """Statistics for ``axis(anchor_tag, target_tag)``, computed lazily."""
        key = (anchor_tag, target_tag, axis)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        anchor_index = self.index[anchor_tag]
        fanouts = [
            len(self.index.related(target_tag, anchor.dewey, axis))
            for anchor in anchor_index
        ]
        stats = PredicateStatistics(anchor_tag, target_tag, axis, fanouts)
        self._cache[key] = stats
        return stats

    def value_predicate(
        self,
        anchor_tag: str,
        target_tag: str,
        axis: DepthRange,
        value: str,
        value_op: str = "eq",
    ) -> PredicateStatistics:
        """Statistics for a predicate with a value condition on the target.

        Used when a query leaf carries a value test, e.g.
        ``title = 'wodehouse'`` (equality) or ``title ~= 'wode'``
        (containment): the fan-out only counts related target nodes whose
        value passes the test.
        """
        from repro.query.pattern import value_test

        key = (anchor_tag, f"{target_tag}{value_op}{value}", axis)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        anchor_index = self.index[anchor_tag]
        fanouts = []
        for anchor in anchor_index:
            related = self.index.related(target_tag, anchor.dewey, axis)
            fanouts.append(
                sum(1 for node in related if value_test(value_op, value, node.value))
            )
        stats = PredicateStatistics(anchor_tag, target_tag, axis, fanouts)
        self._cache[key] = stats
        return stats

    def tag_count(self, tag: str) -> int:
        """Number of nodes with ``tag`` in the database."""
        return self.index.count(tag)

    def cached_predicates(self) -> int:
        """Number of predicate statistics computed so far (for tests)."""
        return len(self._cache)
