"""A small, dependency-free XML parser producing :class:`XMLNode` trees.

The parser covers the XML subset the XMark-like generator emits plus the
common constructs found in benchmark documents: elements, attributes,
character data, CDATA sections, comments, processing instructions, the five
predefined entities and numeric character references.  It does not implement
DTD validation or namespaces — the paper's data model has no use for either.

Attributes are modeled as child nodes whose tag is the attribute name
prefixed with ``@`` (so ``<item id="i3">`` yields a child ``@id`` with value
``"i3"``).  That keeps the node-labeled-tree model uniform: tree patterns
may mention ``@id`` like any other tag.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import XMLParseError
from repro.xmldb.model import Database, XMLNode

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


class _Tokenizer:
    """Character-level cursor over the XML text with error reporting."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def error(self, message: str) -> XMLParseError:
        line = self.text.count("\n", 0, self.pos) + 1
        return XMLParseError(message, position=self.pos, line=line)

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def read_until(self, token: str) -> str:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated construct, expected {token!r}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(token)
        return chunk

    def read_name(self) -> str:
        start = self.pos
        while self.pos < self.length:
            ch = self.text[self.pos]
            if ch.isalnum() or ch in "_-.:":
                self.pos += 1
            else:
                break
        if self.pos == start:
            raise self.error("expected an XML name")
        return self.text[start : self.pos]


def _decode_text(text: str, tokenizer: _Tokenizer) -> str:
    """Replace entity and character references in character data."""
    if "&" not in text:
        return text
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end < 0:
            raise tokenizer.error("unterminated entity reference")
        name = text[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[name])
        else:
            raise tokenizer.error(f"unknown entity &{name};")
        i = end + 1
    return "".join(out)


def _skip_misc(tokenizer: _Tokenizer) -> None:
    """Skip whitespace, comments, PIs and doctype between/around elements."""
    while True:
        tokenizer.skip_whitespace()
        if tokenizer.startswith("<!--"):
            tokenizer.advance(4)
            tokenizer.read_until("-->")
        elif tokenizer.startswith("<?"):
            tokenizer.advance(2)
            tokenizer.read_until("?>")
        elif tokenizer.startswith("<!DOCTYPE") or tokenizer.startswith("<!doctype"):
            tokenizer.read_until(">")
        else:
            return


def _parse_attributes(tokenizer: _Tokenizer) -> List[Tuple[str, str]]:
    attributes: List[Tuple[str, str]] = []
    while True:
        tokenizer.skip_whitespace()
        ch = tokenizer.peek()
        if ch in (">", "/") or tokenizer.eof():
            return attributes
        name = tokenizer.read_name()
        tokenizer.skip_whitespace()
        tokenizer.expect("=")
        tokenizer.skip_whitespace()
        quote = tokenizer.peek()
        if quote not in ("'", '"'):
            raise tokenizer.error("attribute value must be quoted")
        tokenizer.advance(1)
        raw = tokenizer.read_until(quote)
        attributes.append((name, _decode_text(raw, tokenizer)))


def _parse_element(tokenizer: _Tokenizer) -> XMLNode:
    tokenizer.expect("<")
    tag = tokenizer.read_name()
    node = XMLNode(tag)
    for attr_name, attr_value in _parse_attributes(tokenizer):
        node.child("@" + attr_name, attr_value)
    tokenizer.skip_whitespace()
    if tokenizer.startswith("/>"):
        tokenizer.advance(2)
        return node
    tokenizer.expect(">")

    text_parts: List[str] = []
    while True:
        if tokenizer.eof():
            raise tokenizer.error(f"unexpected end of input inside <{tag}>")
        if tokenizer.startswith("</"):
            tokenizer.advance(2)
            closing = tokenizer.read_name()
            if closing != tag:
                raise tokenizer.error(
                    f"mismatched closing tag </{closing}>, expected </{tag}>"
                )
            tokenizer.skip_whitespace()
            tokenizer.expect(">")
            break
        if tokenizer.startswith("<!--"):
            tokenizer.advance(4)
            tokenizer.read_until("-->")
        elif tokenizer.startswith("<![CDATA["):
            tokenizer.advance(9)
            text_parts.append(tokenizer.read_until("]]>"))
        elif tokenizer.startswith("<?"):
            tokenizer.advance(2)
            tokenizer.read_until("?>")
        elif tokenizer.peek() == "<":
            node.add_child(_parse_element(tokenizer))
        else:
            start = tokenizer.pos
            next_tag = tokenizer.text.find("<", start)
            if next_tag < 0:
                raise tokenizer.error(f"unexpected end of input inside <{tag}>")
            raw = tokenizer.text[start:next_tag]
            tokenizer.pos = next_tag
            text_parts.append(_decode_text(raw, tokenizer))

    text = "".join(text_parts).strip()
    if text:
        node.value = text
    return node


def parse_document(text: str) -> Database:
    """Parse one XML document into a single-document :class:`Database`.

    Nesting depth is bounded by the interpreter's recursion limit
    (roughly a thousand levels); pathological documents raise
    :class:`~repro.errors.XMLParseError` instead of ``RecursionError``.
    """
    try:
        database, remainder = _parse_one(text)
    except RecursionError:
        raise XMLParseError(
            "document nesting exceeds the supported depth "
            "(~1000 levels of elements)"
        )
    tokenizer = remainder
    _skip_misc(tokenizer)
    if not tokenizer.eof():
        raise tokenizer.error("trailing content after document element")
    return database


def _parse_one(text: str) -> Tuple[Database, _Tokenizer]:
    tokenizer = _Tokenizer(text)
    _skip_misc(tokenizer)
    if tokenizer.eof():
        raise tokenizer.error("empty document")
    root = _parse_element(tokenizer)
    database = Database()
    database.add_document(root)
    return database, tokenizer


def parse_forest(texts) -> Database:
    """Parse several XML documents into one forest :class:`Database`.

    ``texts`` is an iterable of document strings; documents join the forest
    in iteration order, which fixes their Dewey document ordinals.
    """
    database = Database()
    for text in texts:
        tokenizer = _Tokenizer(text)
        _skip_misc(tokenizer)
        if tokenizer.eof():
            raise tokenizer.error("empty document")
        root = _parse_element(tokenizer)
        _skip_misc(tokenizer)
        if not tokenizer.eof():
            raise tokenizer.error("trailing content after document element")
        database.add_document(root)
    return database


def parse_fragment(text: str) -> XMLNode:
    """Parse a standalone element into a bare (unattached) node tree."""
    tokenizer = _Tokenizer(text)
    _skip_misc(tokenizer)
    node = _parse_element(tokenizer)
    _skip_misc(tokenizer)
    if not tokenizer.eof():
        raise tokenizer.error("trailing content after fragment element")
    return node
