"""Command-line interface: query documents, generate data, run experiments.

Installed as ``python -m repro``::

    python -m repro query books.xml "/book[.//title = 'wodehouse']" -k 5
    python -m repro query auction.xml "//item[./name]" --exact --stats
    python -m repro explain "//item[./description/parlist]"
    python -m repro generate --size 1000000 --seed 7 -o auction.xml
    python -m repro metrics --requests 40 --format prom
    python -m repro recover --store ./recovery --populate 8
    python -m repro sim explore --budget 40
    python -m repro sim replay --corpus tests/fixtures/sim
    python -m repro sim walltime --seeds 6 --json
    python -m repro bench fig5

Every subcommand is a thin shell over the library API; anything the CLI
prints can be obtained programmatically from :mod:`repro`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.engine import ALGORITHMS, Engine
from repro.core.threshold import threshold_query
from repro.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Whirlpool: adaptive top-k queries over XML (ICDE 2005).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser(
        "query", help="run a top-k (or threshold) query against an XML file"
    )
    query.add_argument("file", help="path to the XML document")
    query.add_argument("xpath", help="tree-pattern query in the XPath subset")
    query.add_argument("-k", type=int, default=10, help="answers to return")
    query.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="whirlpool_s",
        help="evaluation algorithm",
    )
    query.add_argument(
        "--routing",
        default="min_alive",
        help="routing strategy (min_alive, min_alive_estimated, "
        "max_score, min_score)",
    )
    query.add_argument(
        "--exact", action="store_true", help="exact matches only (no relaxation)"
    )
    query.add_argument(
        "--normalization",
        choices=("sparse", "dense", "raw"),
        default="sparse",
        help="score normalization (Section 6.2.2)",
    )
    query.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="return ALL answers scoring at least this value instead of top-k",
    )
    query.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; on expiry return the best-known top-k "
        "marked degraded with its pending-score certificate",
    )
    query.add_argument(
        "--max-ops",
        type=int,
        default=None,
        metavar="N",
        help="server-operation budget (same degradation contract as "
        "--deadline)",
    )
    query.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="inject a deterministic random fault plan (testing harness; "
        "see docs/robustness.md)",
    )
    query.add_argument(
        "--stats", action="store_true", help="print execution statistics"
    )
    query.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="show per-answer relaxation provenance",
    )

    explain = commands.add_parser(
        "explain", help="show a query's pattern, predicates and plan"
    )
    explain.add_argument("xpath", help="tree-pattern query in the XPath subset")
    explain.add_argument(
        "--relaxations",
        action="store_true",
        help="also enumerate the (capped) relaxation closure",
    )

    generate = commands.add_parser(
        "generate", help="generate an XMark-like auction document"
    )
    size = generate.add_mutually_exclusive_group()
    size.add_argument("--items", type=int, default=None, help="number of items")
    size.add_argument(
        "--size", type=int, default=None, help="approximate size in bytes"
    )
    generate.add_argument("--seed", type=int, default=42, help="generator seed")
    generate.add_argument(
        "-o", "--output", default=None, help="output file (default: stdout)"
    )

    serve = commands.add_parser(
        "serve-demo",
        help="run a seeded burst workload through the embedded query service",
    )
    serve.add_argument(
        "--items", type=int, default=60, help="XMark items in the demo document"
    )
    serve.add_argument(
        "--seed", type=int, default=11, help="document + workload seed"
    )
    serve.add_argument(
        "--requests", type=int, default=40, help="burst size to replay"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="service worker-pool size"
    )
    serve.add_argument(
        "--queue-depth", type=int, default=8, help="admission-queue capacity"
    )
    serve.add_argument(
        "--overload-policy",
        choices=("reject", "shed-oldest", "shed-lowest-priority", "degrade"),
        default="reject",
        help="what admission does when the queue is full",
    )
    serve.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="inject a deterministic fault plan into every engine run",
    )
    serve.add_argument(
        "--drain-seconds",
        type=float,
        default=5.0,
        help="graceful-drain budget after the burst",
    )
    serve.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    cluster = commands.add_parser(
        "cluster",
        help="run one top-k query on a sharded multi-process cluster",
    )
    cluster.add_argument("xpath", help="tree-pattern query in the XPath subset")
    cluster.add_argument(
        "--items", type=int, default=120, help="XMark items in the generated document"
    )
    cluster.add_argument("--seed", type=int, default=11, help="document seed")
    cluster.add_argument("-k", type=int, default=5, help="answers to return")
    cluster.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="whirlpool_s",
        help="per-shard engine algorithm",
    )
    cluster.add_argument(
        "--shards", type=int, default=2, help="number of shard worker processes"
    )
    cluster.add_argument(
        "--skew",
        type=float,
        default=0.0,
        help="partition skew (0 = balanced; larger piles documents onto "
        "low shards)",
    )
    cluster.add_argument(
        "--partition-seed", type=int, default=0, help="partition shuffle seed"
    )
    cluster.add_argument(
        "--step-ops",
        type=int,
        default=200,
        metavar="N",
        help="server operations per scatter-gather round per shard",
    )
    cluster.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="end-to-end budget; on expiry the merged answer degrades "
        "with a sound global pending bound",
    )
    cluster.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="seeded engine-level fault plan injected into every shard",
    )
    cluster.add_argument(
        "--process-chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="seeded process-level fault plan (SIGKILL / hang / slow "
        "pipe at shard RPC boundaries; see docs/cluster.md)",
    )
    cluster.add_argument(
        "--transport",
        choices=("pipe", "socket"),
        default="pipe",
        help="worker transport: inherited stdio pipes, or loopback TCP "
        "sockets with reconnect-and-replay session resume",
    )
    cluster.add_argument(
        "--net-chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="seeded transport-level fault plan (partition / frame "
        "corruption / duplication / reconnect storms; see "
        "docs/robustness.md)",
    )
    cluster.add_argument(
        "--no-rebalance",
        action="store_true",
        help="disable live rebalancing: a persistently slow shard keeps "
        "its slice instead of being migrated via checkpoint shipping",
    )
    cluster.add_argument(
        "--index-backend",
        choices=("columnar", "object"),
        default=None,
        help="per-shard tag-index backend (default: $REPRO_INDEX_BACKEND, "
        "then columnar); shipped to every worker so the fleet agrees",
    )
    cluster.add_argument(
        "--no-failover",
        action="store_true",
        help="disable checkpoint-shipping failover: a lost shard degrades "
        "the answer instead of respawning",
    )
    cluster.add_argument(
        "--compare-single",
        action="store_true",
        help="also run the query single-process and diff the answers "
        "(exit 3 on mismatch)",
    )
    cluster.add_argument(
        "--stats", action="store_true", help="print merged execution statistics"
    )
    cluster.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    metrics = commands.add_parser(
        "metrics",
        help="replay a seeded workload with observability on and dump metrics",
    )
    metrics.add_argument(
        "--items", type=int, default=60, help="XMark items in the demo document"
    )
    metrics.add_argument(
        "--seed", type=int, default=11, help="document + workload seed"
    )
    metrics.add_argument(
        "--requests", type=int, default=40, help="burst size to replay"
    )
    metrics.add_argument(
        "--workers", type=int, default=2, help="service worker-pool size"
    )
    metrics.add_argument(
        "--slow-query-seconds",
        type=float,
        default=0.25,
        help="latency budget; slower requests land in the slow-query log",
    )
    metrics.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="Prometheus text exposition or the JSON registry dump",
    )
    metrics.add_argument(
        "--slow-log",
        action="store_true",
        help="also print the captured slow-query entries",
    )
    metrics.add_argument(
        "--cluster-shards",
        type=int,
        default=None,
        metavar="N",
        help="route the workload through an N-shard cluster backend; the "
        "dump then includes per-shard liveness, heartbeat ages and "
        "failover counters",
    )
    metrics.add_argument(
        "--cluster-transport",
        choices=("pipe", "socket"),
        default="pipe",
        help="worker transport for the cluster backend (with "
        "--cluster-shards)",
    )

    recover = commands.add_parser(
        "recover",
        help="re-admit persisted request snapshots from a recovery store",
    )
    recover.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="JSON-file recovery-store directory (see docs/robustness.md)",
    )
    recover.add_argument(
        "--populate",
        type=int,
        default=0,
        metavar="N",
        help="demo mode: first burst N requests into a zero-budget drain "
        "so their snapshots land in the store, then recover them",
    )
    recover.add_argument(
        "--items", type=int, default=60, help="XMark items in the demo document"
    )
    recover.add_argument(
        "--seed", type=int, default=11, help="document + workload seed"
    )
    recover.add_argument(
        "--workers", type=int, default=2, help="service worker-pool size"
    )
    recover.add_argument(
        "--drain-seconds",
        type=float,
        default=10.0,
        help="graceful-drain budget after recovery",
    )
    recover.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    sim = commands.add_parser(
        "sim",
        help="deterministic simulation: explore fault schedules, replay "
        "the reproducer corpus, measure the virtual-clock speedup",
    )
    sim.add_argument(
        "action",
        choices=("explore", "replay", "walltime"),
        help="explore: randomized+perturbation schedule search (shrinks "
        "any violation to a minimal reproducer); replay: re-run corpus "
        "fixtures and compare verdicts byte-for-byte; walltime: run a "
        "chaos sweep under real and virtual clocks and report the "
        "wall-time reduction",
    )
    sim.add_argument(
        "--budget", type=int, default=40, help="explore: simulated runs to spend"
    )
    sim.add_argument("--seed", type=int, default=0, help="explore: search seed")
    sim.add_argument(
        "--kind",
        choices=("engine", "cluster"),
        default="engine",
        help="explore: scenario kind (cluster adds worker/net faults)",
    )
    sim.add_argument(
        "--transport",
        choices=("pipe", "socket"),
        default="pipe",
        help="explore: cluster transport",
    )
    sim.add_argument(
        "--shards", type=int, default=2, help="explore: cluster shard count"
    )
    sim.add_argument(
        "--items", type=int, default=40, help="scenario XMark document size"
    )
    sim.add_argument("-k", type=int, default=4, help="scenario top-k size")
    sim.add_argument(
        "--out",
        metavar="DIR",
        help="explore: write shrunk reproducer fixtures into DIR",
    )
    sim.add_argument(
        "--corpus",
        default="tests/fixtures/sim",
        metavar="DIR",
        help="replay: fixture corpus directory",
    )
    sim.add_argument(
        "--seeds", type=int, default=6, help="walltime: chaos seeds to sweep"
    )
    sim.add_argument(
        "--delay",
        type=float,
        default=0.05,
        help="walltime: max injected DELAY per chaos rule (seconds)",
    )
    sim.add_argument(
        "--real-clock",
        action="store_true",
        help="explore/replay: run on the real clock instead of warping",
    )
    sim.add_argument("--json", action="store_true", help="machine-readable output")

    bench = commands.add_parser("bench", help="run one experiment driver")
    bench.add_argument(
        "experiment",
        choices=(
            "fig5", "fig6", "fig8", "fig9", "fig10", "fig11",
            "table2", "queues", "scoring", "all",
        ),
        help="which paper artifact to regenerate ('all' runs every driver)",
    )
    return parser


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def _cmd_query(args) -> int:
    from repro.xmldb.parser import parse_document

    with open(args.file) as handle:
        database = parse_document(handle.read())
    engine = Engine(
        database,
        args.xpath,
        relaxed=not args.exact,
        normalization=args.normalization,
    )
    if args.threshold is not None:
        result = threshold_query(engine, min_score=args.threshold)
    else:
        faults = None
        if args.chaos_seed is not None:
            from repro.faults import FaultPlan

            faults = FaultPlan.chaos(args.chaos_seed)
        result = engine.run(
            args.k,
            algorithm=args.algorithm,
            routing=args.routing,
            deadline_seconds=args.deadline,
            max_operations=args.max_ops,
            faults=faults,
        )

    if args.json:
        payload = {
            "answers": [
                {
                    "dewey": ".".join(map(str, answer.root_node.dewey)),
                    "tag": answer.root_node.tag,
                    "score": answer.score,
                    "match": answer.match.describe(),
                }
                for answer in result.answers
            ],
            "stats": result.stats.as_dict(),
            "degraded": result.degraded,
            "pending_bound": result.pending_bound,
            "failure": result.failure.as_dict() if result.failure else None,
        }
        print(json.dumps(payload, indent=2))
        return 0

    print(result.table())
    if result.degraded:
        print(
            f"\nwarning: degraded result — unreported answers score "
            f"<= {result.pending_bound:.4f}",
            file=sys.stderr,
        )
    if result.failure is not None:
        print(f"failures: {result.failure.summary()}", file=sys.stderr)
    if args.explain:
        print()
        for answer in result.answers:
            print(answer.explain(engine.pattern))
            print()
    if args.stats:
        print("\nexecution statistics:")
        for key, value in result.stats.as_dict().items():
            print(f"  {key}: {value}")
    return 0


def _cmd_explain(args) -> int:
    from repro.query.predicates import component_predicates
    from repro.query.xpath import parse_xpath
    from repro.relax.enumeration import enumerate_relaxations
    from repro.relax.plan import compile_plan

    pattern = parse_xpath(args.xpath)
    print("pattern:")
    for line in pattern.describe().splitlines():
        print(f"  {line}")

    print("\ncomponent predicates (Definition 4.1):")
    for predicate in component_predicates(pattern):
        relaxable = " (relaxable)" if predicate.is_relaxable() else ""
        print(f"  {predicate.describe()}{relaxable}")

    plan = compile_plan(pattern)
    print(f"\ncompiled plan: {len(plan.servers)} servers")
    for node_id in plan.server_ids():
        server = plan.server(node_id)
        print(
            f"  server {server.tag}#{node_id}: probe={server.probe_axis}, "
            f"{len(server.conditionals)} conditional predicates"
        )

    if args.relaxations:
        closure = enumerate_relaxations(pattern, limit=50)
        print(f"\nrelaxation closure (first {len(closure)} queries):")
        for relaxed in closure[:20]:
            print(f"  {relaxed.to_xpath()}")
        if len(closure) > 20:
            print(f"  ... and {len(closure) - 20} more")
    return 0


def _cmd_generate(args) -> int:
    from repro.xmark.generator import generate_database, generate_for_size
    from repro.xmark.schema import XMarkConfig
    from repro.xmldb.serializer import serialize

    if args.size is not None:
        database = generate_for_size(args.size, seed=args.seed)
    else:
        items = args.items if args.items is not None else 100
        database = generate_database(XMarkConfig(items=items, seed=args.seed))
    text = serialize(database)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(
            f"wrote {len(text.encode('utf-8'))} bytes "
            f"({len(database.nodes_with_tag('item'))} items) to {args.output}",
            file=sys.stderr,
        )
    else:
        print(text)
    return 0


#: Query pool the demo workload draws from (all answerable on XMark docs).
_DEMO_QUERIES = (
    "//item[./description/parlist]",
    "//item[./mailbox/mail/text]",
    "//item[./description/parlist and ./mailbox/mail/text]",
    "//item[./name and ./payment]",
)


def _cmd_serve_demo(args) -> int:
    import random

    from repro.faults import FaultPlan
    from repro.service import OverloadPolicy, QueryRequest, WhirlpoolService
    from repro.xmark.generator import generate_database
    from repro.xmark.schema import XMarkConfig

    database = generate_database(XMarkConfig(items=args.items, seed=args.seed))
    service = WhirlpoolService(
        {"auction": database},
        workers=args.workers,
        queue_depth=args.queue_depth,
        overload_policy=OverloadPolicy.parse(args.overload_policy),
        seed=args.seed,
    )

    rng = random.Random(args.seed)
    tickets = []
    for _ in range(args.requests):
        faults = None
        if args.chaos_seed is not None:
            faults = FaultPlan.chaos(args.chaos_seed + rng.randint(0, 1000))
        request = QueryRequest(
            document="auction",
            xpath=rng.choice(_DEMO_QUERIES),
            k=rng.randint(1, 10),
            priority=rng.randint(0, 2),
            deadline_seconds=rng.choice([None, 0.05, 0.25, 1.0]),
            algorithm=rng.choice(["whirlpool_s", "whirlpool_m", "lockstep"]),
            faults=faults,
        )
        tickets.append(service.submit(request))

    drained = service.drain(args.drain_seconds)
    health = service.health()

    outcomes: dict = {}
    unresolved = 0
    for ticket in tickets:
        response = ticket.peek()
        if response is None:
            unresolved += 1
            continue
        outcomes[response.outcome.value] = outcomes.get(response.outcome.value, 0) + 1

    if args.json:
        print(
            json.dumps(
                {
                    "requests": args.requests,
                    "outcomes": dict(sorted(outcomes.items())),
                    "unresolved": unresolved,
                    "drained_within_budget": drained,
                    "health": health.as_dict(),
                },
                indent=2,
            )
        )
    else:
        print(f"replayed {args.requests} requests (seed {args.seed}):")
        for name, count in sorted(outcomes.items()):
            print(f"  {name:10s} {count}")
        if unresolved:
            print(f"  UNRESOLVED {unresolved}")
        print(f"drain within {args.drain_seconds:g}s budget: {drained}")
        print("\nhealth snapshot:")
        for key, value in health.as_dict().items():
            if key == "breakers":
                assert isinstance(value, dict)
                for name, snap in value.items():
                    assert isinstance(snap, dict)
                    print(
                        f"  breaker {name}: {snap['state']} "
                        f"(trips={snap['trips']}, probes={snap['probes']})"
                    )
            elif key in ("counters", "engine_stats"):
                assert isinstance(value, dict)
                print(f"  {key}:")
                for inner, inner_value in value.items():
                    print(f"    {inner}: {inner_value}")
            else:
                print(f"  {key}: {value}")
    # Every submitted request must carry a terminal outcome; anything
    # unresolved is a service bug, not a workload property.
    return 0 if unresolved == 0 else 2


def _cmd_cluster(args) -> int:
    from repro.cluster import Coordinator
    from repro.faults import FaultPlan
    from repro.xmark.generator import generate_database
    from repro.xmark.schema import XMarkConfig

    database = generate_database(XMarkConfig(items=args.items, seed=args.seed))
    engine_faults = (
        FaultPlan.chaos(args.chaos_seed) if args.chaos_seed is not None else None
    )
    process_faults = (
        FaultPlan.worker_chaos(args.process_chaos_seed, args.shards)
        if args.process_chaos_seed is not None
        else None
    )
    net_faults = (
        FaultPlan.net_chaos(args.net_chaos_seed, args.shards)
        if args.net_chaos_seed is not None
        else None
    )
    with Coordinator(
        database,
        shards=args.shards,
        skew=args.skew,
        partition_seed=args.partition_seed,
        step_operations=args.step_ops,
        transport=args.transport,
        rebalance=not args.no_rebalance,
        index_backend=args.index_backend,
    ) as coordinator:
        result = coordinator.run_query(
            args.xpath,
            args.k,
            algorithm=args.algorithm,
            deadline_seconds=args.deadline,
            engine_faults=engine_faults,
            process_faults=process_faults,
            net_faults=net_faults,
            fail_over=not args.no_failover,
        )
        health = coordinator.health()

    mismatch = False
    single = None
    if args.compare_single:
        single = Engine(database, args.xpath).run(args.k, algorithm=args.algorithm)
        got = [(tuple(a.root_node.dewey), round(a.score, 9)) for a in result.answers]
        want = [(tuple(a.root_node.dewey), round(a.score, 9)) for a in single.answers]
        mismatch = got != want

    if args.json:
        payload = {
            "answers": [
                {
                    "dewey": ".".join(map(str, answer.root_node.dewey)),
                    "tag": answer.root_node.tag,
                    "score": answer.score,
                }
                for answer in result.answers
            ],
            "degraded": result.degraded,
            "pending_bound": result.pending_bound,
            "shards": result.shards,
            "missing_shards": list(result.missing_shards),
            "failovers": result.failovers,
            "heartbeat_misses": result.heartbeat_misses,
            "reconnects": result.reconnects,
            "rebalances": result.rebalances,
            "transport": result.transport,
            "rounds": result.rounds,
            "stats": result.stats.as_dict(),
            "health": health,
        }
        if args.compare_single:
            payload["matches_single_process"] = not mismatch
        print(json.dumps(payload, indent=2))
    else:
        print(result.table())
        print(
            f"\ncluster: {result.shards} shards ({result.transport}), "
            f"{result.rounds} rounds, {result.failovers} failovers, "
            f"{result.heartbeat_misses} heartbeat misses, "
            f"{result.reconnects} reconnects, {result.rebalances} rebalances"
        )
        if result.degraded:
            print(
                f"warning: degraded result — missing shards "
                f"{list(result.missing_shards) or 'none'}, unreported answers "
                f"score <= {result.pending_bound:.4f}",
                file=sys.stderr,
            )
        if args.compare_single:
            verdict = "MISMATCH" if mismatch else "identical"
            print(f"single-process comparison: {verdict}")
        if args.stats:
            print("\nmerged execution statistics:")
            for key, value in result.stats.as_dict().items():
                print(f"  {key}: {value}")
    return 3 if mismatch else 0


def _cmd_metrics(args) -> int:
    import random

    from repro.obs import Observability
    from repro.service import QueryRequest, WhirlpoolService
    from repro.xmark.generator import generate_database
    from repro.xmark.schema import XMarkConfig

    database = generate_database(XMarkConfig(items=args.items, seed=args.seed))
    obs = Observability(slow_query_seconds=args.slow_query_seconds)
    backend = None
    if args.cluster_shards is not None:
        from repro.cluster.service import ClusterBackend

        backend = ClusterBackend(
            {"auction": database},
            shards=args.cluster_shards,
            observability=obs,
            transport=args.cluster_transport,
        )
    service = WhirlpoolService(
        {"auction": database},
        workers=args.workers,
        seed=args.seed,
        observability=obs,
        backend=backend,
    )

    rng = random.Random(args.seed)
    for _ in range(args.requests):
        service.submit(
            QueryRequest(
                document="auction",
                xpath=rng.choice(_DEMO_QUERIES),
                k=rng.randint(1, 10),
                algorithm=rng.choice(["whirlpool_s", "whirlpool_m", "lockstep"]),
            )
        )
    # Capture backend liveness before drain tears the worker fleet down.
    backend_health = service.health().backend
    service.drain(30.0)

    if args.format == "json":
        payload = {"metrics": obs.registry.as_dict()}
        if backend_health is not None:
            payload["backend"] = backend_health
        if args.slow_log and obs.slow_log is not None:
            payload["slow_queries"] = obs.slow_log.as_dicts()
        print(json.dumps(payload, indent=2))
        return 0

    print(service.metrics_text(), end="")
    if backend_health is not None:
        print("\n# cluster backend health", file=sys.stderr)
        for name, doc in sorted(backend_health.get("documents", {}).items()):
            print(
                f"# {name}: {doc.get('live_shards')}/{doc.get('shards')} shards "
                f"live, {doc.get('failovers')} failovers, "
                f"{doc.get('queries')} queries "
                f"({doc.get('degraded_queries')} degraded)",
                file=sys.stderr,
            )
            for shard_id, row in sorted(doc.get("per_shard", {}).items()):
                age = row.get("last_heartbeat_age_seconds")
                age_text = "never" if age is None else f"{age:.3f}s"
                print(
                    f"#   shard {shard_id}: {row.get('state')}"
                    f"/{row.get('connection')}, "
                    f"last heartbeat {age_text}, "
                    f"failovers={row.get('failovers')}, "
                    f"misses={row.get('heartbeat_misses')}, "
                    f"reconnects={row.get('reconnects')}",
                    file=sys.stderr,
                )
    if args.slow_log and obs.slow_log is not None:
        entries = obs.slow_log.entries()
        print(
            f"\n# slow-query log: {len(entries)} entries "
            f"(budget {args.slow_query_seconds:g}s)",
            file=sys.stderr,
        )
        for entry in entries:
            print(entry.describe(), file=sys.stderr)
    return 0


def _cmd_recover(args) -> int:
    import random

    from repro.recovery import JsonFileRecoveryStore
    from repro.service import QueryRequest, WhirlpoolService
    from repro.xmark.generator import generate_database
    from repro.xmark.schema import XMarkConfig

    database = generate_database(XMarkConfig(items=args.items, seed=args.seed))
    store = JsonFileRecoveryStore(args.store)

    populated = 0
    if args.populate > 0:
        # Demo "crash": admit a burst, then drain with a zero budget so
        # the queued work is shed — with the store attached each shed
        # request persists its envelope instead of vanishing.
        victim = WhirlpoolService(
            {"auction": database},
            workers=args.workers,
            queue_depth=max(args.populate, 1),
            seed=args.seed,
            recovery_store=store,
            auto_start=False,
        )
        rng = random.Random(args.seed)
        for _ in range(args.populate):
            victim.submit(
                QueryRequest(
                    document="auction",
                    xpath=rng.choice(_DEMO_QUERIES),
                    k=rng.randint(1, 10),
                    algorithm=rng.choice(["whirlpool_s", "whirlpool_m", "lockstep"]),
                )
            )
        victim.drain(budget_seconds=0.0)
        populated = store.count()

    found_before = store.count()
    service = WhirlpoolService(
        {"auction": database},
        workers=args.workers,
        seed=args.seed,
        recovery_store=store,
    )
    summary = service.recover()
    outcomes: dict = {}
    unresolved = 0
    for ticket in summary["tickets"]:
        try:
            response = ticket.result(timeout=args.drain_seconds)
        except ReproError:
            unresolved += 1
            continue
        outcomes[response.outcome.value] = outcomes.get(response.outcome.value, 0) + 1
    service.drain(args.drain_seconds)

    if args.json:
        print(
            json.dumps(
                {
                    "store": args.store,
                    "populated": populated,
                    "snapshots_found": found_before,
                    "recovered": summary["recovered"],
                    "invalid": summary["invalid"],
                    "outcomes": dict(sorted(outcomes.items())),
                    "unresolved": unresolved,
                    "pending_after": store.count(),
                },
                indent=2,
            )
        )
    else:
        if populated:
            print(f"populated {populated} snapshots via zero-budget drain")
        print(
            f"recovery store {args.store}: {found_before} snapshots, "
            f"{summary['recovered']} recovered, {summary['invalid']} invalid"
        )
        for name, count in sorted(outcomes.items()):
            print(f"  {name:10s} {count}")
        if unresolved:
            print(f"  UNRESOLVED {unresolved}")
        print(f"snapshots left in store: {store.count()}")
    return 0 if unresolved == 0 else 2


def _cmd_sim(args) -> int:
    import time as _time
    from pathlib import Path

    from repro.sim.explore import explore
    from repro.sim.harness import SimHarness, SimScenario
    from repro.sim.shrink import replay_fixture, shrink, write_fixture

    if args.action == "explore":
        scenario = SimScenario(
            kind=args.kind,
            k=args.k,
            xmark_items=args.items,
            shards=args.shards,
            transport=args.transport,
        )
        harness = SimHarness(scenario, virtual=not args.real_clock)
        violations, stats = explore(
            scenario, budget=args.budget, seed=args.seed, harness=harness
        )
        reproducers = []
        for index, violation in enumerate(violations):
            minimal = shrink(harness, violation.schedule)
            run = harness.run(minimal)
            entry = {
                "schedule": minimal.describe(),
                "violated": [v.name for v in run.report.violations()],
            }
            if args.out:
                out_dir = Path(args.out)
                out_dir.mkdir(parents=True, exist_ok=True)
                name = f"violation_{index}"
                entry["fixture"] = str(
                    write_fixture(out_dir / f"{name}.json", scenario, run, name)
                )
            reproducers.append(entry)
        payload = {"stats": stats.as_dict(), "reproducers": reproducers}
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(
                f"explored {stats.runs} schedules "
                f"({stats.random_runs} random, {stats.perturbed_runs} perturbed) "
                f"in {stats.wall_seconds:.2f}s wall, "
                f"{stats.warped_seconds:.2f}s warped away"
            )
            for entry in reproducers:
                print(f"  violation: {' + '.join(entry['schedule'])}")
        return 1 if violations else 0

    if args.action == "replay":
        corpus = sorted(Path(args.corpus).glob("*.json"))
        if not corpus:
            print(f"error: no fixtures under {args.corpus!r}", file=sys.stderr)
            return 2
        results = []
        for path in corpus:
            replay = replay_fixture(path, virtual=not args.real_clock)
            results.append(
                {
                    "fixture": str(path),
                    "name": replay["name"],
                    "matches": replay["matches"],
                }
            )
        mismatches = [entry for entry in results if not entry["matches"]]
        if args.json:
            print(json.dumps({"replays": results}, indent=2))
        else:
            for entry in results:
                flag = "ok" if entry["matches"] else "MISMATCH"
                print(f"  {entry['name']}: {flag}")
        return 1 if mismatches else 0

    # walltime: the same chaos sweep on both clocks — answers must agree,
    # and the virtual clock must warp the injected delays away.
    from repro.core.engine import Engine
    from repro.faults.plan import FaultPlan
    from repro.sim.clock import RealClock, VirtualClock, use_clock
    from repro.xmark.generator import generate_database
    from repro.xmark.schema import XMarkConfig

    database = generate_database(XMarkConfig(items=args.items, seed=7))
    engine = Engine(
        database, "//item[./description/parlist and ./mailbox/mail/text]"
    )

    def sweep(clock) -> tuple:
        keys = []
        started = _time.monotonic()
        with use_clock(clock):
            for seed in range(args.seeds):
                plan = FaultPlan.chaos(seed, max_delay_seconds=args.delay)
                result = engine.run(args.k, faults=plan)
                keys.append(
                    (
                        result.degraded,
                        tuple(
                            (tuple(a.root_node.dewey), repr(a.score))
                            for a in result.answers
                        ),
                    )
                )
        return _time.monotonic() - started, keys

    real_seconds, real_keys = sweep(RealClock())
    virtual_seconds, virtual_keys = sweep(VirtualClock())
    equivalent = real_keys == virtual_keys
    reduction = real_seconds / virtual_seconds if virtual_seconds > 0 else float("inf")
    payload = {
        "seeds": args.seeds,
        "real_seconds": round(real_seconds, 4),
        "virtual_seconds": round(virtual_seconds, 4),
        "reduction": round(reduction, 2),
        "equivalent": equivalent,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"chaos sweep over {args.seeds} seeds: real {real_seconds:.2f}s, "
            f"virtual {virtual_seconds:.2f}s ({reduction:.1f}x reduction), "
            f"answers {'identical' if equivalent else 'DIVERGED'}"
        )
    return 0 if equivalent else 1


def _cmd_bench(args) -> int:
    from repro.bench import experiments

    drivers = {
        "fig5": experiments.fig5_routing_strategies,
        "fig6": experiments.fig6_7_adaptive_vs_static,
        "fig8": experiments.fig8_adaptivity_cost,
        "fig9": experiments.fig9_parallelism,
        "fig10": experiments.fig10_vary_k,
        "fig11": experiments.fig11_vary_docsize,
        "table2": experiments.table2_scalability,
        "queues": experiments.queue_policy_ablation,
        "scoring": experiments.scoring_function_ablation,
    }
    if args.experiment == "all":
        payload = {name: driver() for name, driver in drivers.items()}
    else:
        payload = drivers[args.experiment]()
    print(json.dumps(payload, indent=2, default=str))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "query": _cmd_query,
        "explain": _cmd_explain,
        "generate": _cmd_generate,
        "serve-demo": _cmd_serve_demo,
        "cluster": _cmd_cluster,
        "metrics": _cmd_metrics,
        "recover": _cmd_recover,
        "sim": _cmd_sim,
        "bench": _cmd_bench,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
